#include "elastic/planner.h"

#include <algorithm>
#include <map>

#include "common/logging.h"

namespace fluentps::elastic {
namespace {

bool length_desc_key_asc(const ps::ParamSlice& a, const ps::ParamSlice& b) {
  if (a.length != b.length) return a.length > b.length;
  return a.key < b.key;
}

/// Conservation check: every slice of `old` lands in `fresh` exactly once,
/// and `moves` lists exactly the slices whose owner changed (with the right
/// endpoints). The migration executor trusts this — a slice moved twice
/// would double-apply its catch-up deltas, a dropped one would lose updates.
void check_conservation(const ps::Sharding& old, const Plan& plan) {
  std::map<std::size_t, std::uint32_t> old_owner;   // slice offset -> rank
  std::map<std::size_t, std::uint32_t> new_owner;
  std::size_t old_bytes = 0, new_bytes = 0;
  for (const auto& sh : old.shards) {
    for (const auto& s : sh.slices) {
      old_owner[s.offset] = sh.server_rank;
      old_bytes += s.length;
    }
  }
  for (const auto& sh : plan.sharding.shards) {
    for (const auto& s : sh.slices) {
      FPS_CHECK(new_owner.emplace(s.offset, sh.server_rank).second)
          << "replan placed slice at offset " << s.offset << " twice";
      new_bytes += s.length;
    }
  }
  FPS_CHECK(old_bytes == new_bytes)
      << "replan changed total bytes: " << old_bytes << " -> " << new_bytes;
  std::map<std::size_t, const ps::EpsSlicer::Migration*> moved;
  for (const auto& mv : plan.moves) {
    FPS_CHECK(moved.emplace(mv.slice.offset, &mv).second)
        << "slice at offset " << mv.slice.offset << " moved twice in one plan";
  }
  for (const auto& [off, from] : old_owner) {
    const auto to = new_owner.find(off);
    FPS_CHECK(to != new_owner.end()) << "replan dropped slice at offset " << off;
    const auto mv = moved.find(off);
    if (to->second == from) {
      FPS_CHECK(mv == moved.end()) << "plan moves an unmoved slice (offset " << off << ")";
    } else {
      FPS_CHECK(mv != moved.end() && mv->second->from_server == from &&
                mv->second->to_server == to->second)
          << "plan misses or mislabels the move of slice at offset " << off;
    }
  }
}

}  // namespace

Plan replan(const ps::Sharding& old, const std::vector<char>& active) {
  FPS_CHECK(active.size() == old.num_servers())
      << "active mask size " << active.size() << " != slot count " << old.num_servers();
  std::uint32_t num_active = 0;
  for (const char a : active) num_active += a != 0;
  FPS_CHECK(num_active >= 1) << "replan needs at least one active slot";

  const double target = static_cast<double>(old.num_params) / num_active;
  const std::uint32_t slots = static_cast<std::uint32_t>(old.num_servers());

  Plan plan;
  plan.sharding.num_params = old.num_params;
  plan.sharding.shards.resize(slots);
  for (std::uint32_t m = 0; m < slots; ++m) plan.sharding.shards[m].server_rank = m;

  // Same keep/pool split as EpsSlicer::rebalance, keyed on the mask instead
  // of the rank-below-count test.
  struct PoolEntry {
    ps::ParamSlice slice;
    std::uint32_t from;
  };
  std::vector<PoolEntry> pool;
  for (const auto& sh : old.shards) {
    auto slices = sh.slices;
    std::sort(slices.begin(), slices.end(), length_desc_key_asc);
    for (const auto& s : slices) {
      auto& keep = plan.sharding.shards[sh.server_rank];
      if (active[sh.server_rank] != 0 && static_cast<double>(keep.total) < target) {
        keep.slices.push_back(s);
        keep.total += s.length;
      } else {
        pool.push_back(PoolEntry{s, sh.server_rank});
      }
    }
  }

  std::sort(pool.begin(), pool.end(), [](const PoolEntry& a, const PoolEntry& b) {
    return length_desc_key_asc(a.slice, b.slice);
  });
  for (const auto& entry : pool) {
    std::uint32_t best = slots;  // least-loaded active slot, lowest rank on ties
    for (std::uint32_t m = 0; m < slots; ++m) {
      if (active[m] == 0) continue;
      if (best == slots || plan.sharding.shards[m].total < plan.sharding.shards[best].total) {
        best = m;
      }
    }
    plan.sharding.shards[best].slices.push_back(entry.slice);
    plan.sharding.shards[best].total += entry.slice.length;
    if (entry.from != best) {
      plan.moves.push_back(ps::EpsSlicer::Migration{entry.slice, entry.from, best});
    }
  }
  for (auto& sh : plan.sharding.shards) {
    std::sort(sh.slices.begin(), sh.slices.end(),
              [](const ps::ParamSlice& a, const ps::ParamSlice& b) {
                return a.offset < b.offset;
              });
  }
  plan.sharding.validate();
  check_conservation(old, plan);
  return plan;
}

ps::Sharding expand_to_slots(ps::Sharding base, std::uint32_t num_slots) {
  FPS_CHECK(base.num_servers() <= num_slots)
      << "cannot expand " << base.num_servers() << " shards into " << num_slots << " slots";
  const auto first_spare = static_cast<std::uint32_t>(base.num_servers());
  base.shards.resize(num_slots);
  for (std::uint32_t m = first_spare; m < num_slots; ++m) base.shards[m].server_rank = m;
  base.validate();
  return base;
}

}  // namespace fluentps::elastic
