// Elastic cluster membership (DESIGN.md §14).
//
// The experiment's `num_servers` is the total *slot* count, fixed for the
// whole run: every server slot gets its node id, engine, chain replicas and
// transport registration at startup, but only the slots in the active set own
// parameter slices and receive traffic. `add_server` activates a spare slot,
// `drain_server` hands a slot's slices off and deactivates it — both are
// planned, epoch-fenced view changes executed by the runtime's elastic
// controller against a *running* job (live pre-copy, then a short fence; see
// ps::Server's migration API and the runtime controllers).
//
// Keeping the slot universe fixed is what makes the at-least-once reliability
// layer survive reconfiguration without renumbering anything: per-
// (worker,server) sequence streams and their SeqWindows belong to the slot
// and simply continue when a slot is re-activated, so a delayed duplicate
// from before a drain is still deduplicated after a later re-add.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/logging.h"
#include "ps/slicing.h"

namespace fluentps::elastic {

/// One planned reconfiguration step. Ops trigger when dense worker 0
/// completes iteration `at_iter` (the same boundary the sync-mode schedule
/// keys on, so sim runs stay bit-deterministic). When sparse tables are
/// enabled, the sparse workers park before starting round `at_round`
/// (derived from at_iter when < 0: both backends must agree on the round a
/// priori — a racy "whatever round we happen to be in" choice would deadlock
/// the BSP round clock, since a round some workers entered must be completed
/// by all of them).
struct ElasticOp {
  std::int64_t at_iter = 0;
  std::int64_t at_round = -1;
  bool add = true;  ///< true = add_server (activate `rank`), false = drain_server
  std::uint32_t rank = 0;
};

/// Elastic membership config. Disabled (the default) means every slot is
/// active from the start and no view ever changes — the pre-elastic behavior.
struct ElasticSpec {
  std::uint32_t initial_servers = 0;  ///< active slots at start (0 = all)
  std::vector<ElasticOp> schedule;    ///< ordered by at_iter
  /// Live pre-copy lead: migrations start when dense worker 0 is this many
  /// iterations before an op's at_iter, so snapshots stream while training
  /// continues and only catch-up deltas remain at the fence.
  std::int64_t lead_iters = 5;

  [[nodiscard]] bool enabled() const noexcept {
    return initial_servers > 0 || !schedule.empty();
  }
};

/// Derived sparse park round for an op: explicit when given, else the round
/// proportional to the op's position in the dense iteration space. Never 0 —
/// at least one round runs in the initial view.
inline std::int64_t park_round_of(const ElasticOp& op, std::int64_t max_iters,
                                  std::int64_t rounds) {
  if (op.at_round >= 0) return op.at_round;
  if (max_iters <= 0) return 1;
  const std::int64_t r = (op.at_iter + 1) * rounds / std::max<std::int64_t>(max_iters, 1);
  return std::max<std::int64_t>(r, 1);
}

/// Parse a CLI elastic schedule: comma- or semicolon-separated ops, each
/// `add:RANK@ITER` or `drain:RANK@ITER`, optionally `@ITER/ROUND` to pin the
/// sparse park round explicitly. Example: "add:3@40,drain:1@80". Returns
/// false (leaving *out in an unspecified state) on malformed input.
inline bool parse_schedule(std::string_view text, std::vector<ElasticOp>* out) {
  const auto parse_int = [](std::string_view s, std::int64_t* v) {
    if (s.empty()) return false;
    std::int64_t r = 0;
    for (const char c : s) {
      if (c < '0' || c > '9') return false;
      r = r * 10 + (c - '0');
    }
    *v = r;
    return true;
  };
  out->clear();
  std::size_t i = 0;
  while (i <= text.size()) {
    std::size_t j = text.find_first_of(",;", i);
    if (j == std::string_view::npos) j = text.size();
    const std::string_view tok = text.substr(i, j - i);
    i = j + 1;
    if (tok.empty()) {
      if (i > text.size()) break;
      continue;
    }
    ElasticOp op;
    const std::size_t colon = tok.find(':');
    if (colon == std::string_view::npos) return false;
    const std::string_view kind = tok.substr(0, colon);
    if (kind == "add") {
      op.add = true;
    } else if (kind == "drain") {
      op.add = false;
    } else {
      return false;
    }
    const std::size_t at = tok.find('@', colon + 1);
    if (at == std::string_view::npos) return false;
    std::int64_t rank = 0;
    if (!parse_int(tok.substr(colon + 1, at - colon - 1), &rank)) return false;
    op.rank = static_cast<std::uint32_t>(rank);
    const std::string_view when = tok.substr(at + 1);
    const std::size_t slash = when.find('/');
    std::int64_t iter = 0;
    if (!parse_int(when.substr(0, slash), &iter)) return false;
    op.at_iter = iter;
    if (slash != std::string_view::npos) {
      std::int64_t round = 0;
      if (!parse_int(when.substr(slash + 1), &round)) return false;
      op.at_round = round;
    }
    out->push_back(op);
  }
  return true;
}

/// Runtime-side validation shared by both backends. Elastic membership rides
/// the reliability layer (implied by ExperimentConfig::reliability_enabled),
/// requires the FluentPS architecture, and is incompatible with crash
/// schedules / checkpointing (a crash mid-migration is out of scope) and with
/// replicated sparse jobs.
inline void validate_spec(const ElasticSpec& spec, bool fluentps_arch, bool crash_free,
                          bool sparse, std::uint32_t replication_factor,
                          std::int64_t max_iters, std::int64_t sparse_rounds) {
  FPS_CHECK(fluentps_arch) << "elastic membership requires the FluentPS architecture";
  FPS_CHECK(crash_free)
      << "elastic membership is incompatible with crash schedules and checkpointing";
  FPS_CHECK(!(sparse && replication_factor > 1))
      << "elastic sparse jobs do not support replication_factor > 1";
  FPS_CHECK(spec.lead_iters >= 0) << "elastic.lead_iters must be >= 0";
  std::int64_t prev_iter = 0;
  std::int64_t prev_round = 0;
  for (const ElasticOp& op : spec.schedule) {
    FPS_CHECK(op.at_iter >= 1 && op.at_iter < max_iters)
        << "elastic op at_iter " << op.at_iter << " outside [1, " << max_iters << ")";
    FPS_CHECK(op.at_iter >= prev_iter) << "elastic schedule must be ordered by at_iter";
    prev_iter = op.at_iter;
    if (sparse) {
      const std::int64_t r = park_round_of(op, max_iters, sparse_rounds);
      FPS_CHECK(r >= prev_round) << "elastic sparse park rounds must be non-decreasing";
      prev_round = r;
    }
  }
}

/// Epoch-numbered view of the cluster: which slots are active and which
/// slices each one owns. Epoch 0 is the initial view; every committed
/// ElasticOp produces epoch+1. The runtime hands copies of this to tests and
/// the CLI report; the authoritative instance lives in the Membership below.
struct MembershipView {
  std::uint64_t epoch = 0;
  std::vector<char> active;  ///< per slot; inactive slots own no slices
  ps::Sharding sharding;     ///< slice assignment over all slots

  [[nodiscard]] std::uint32_t num_active() const noexcept {
    std::uint32_t n = 0;
    for (const char a : active) n += a != 0;
    return n;
  }
};

/// Aggregate elastic telemetry, collected into the experiment result and the
/// `elastic.*` metric names (DESIGN.md §14).
struct ElasticStats {
  std::int64_t migrations = 0;         ///< slices moved between slots
  std::int64_t bytes_moved = 0;        ///< snapshot + delta + sparse-row bytes
  std::uint64_t epoch = 0;             ///< final committed epoch
  double rebind_stall_seconds = 0.0;   ///< total fence (workers parked) time
  double migrate_seconds = 0.0;        ///< total live pre-copy time
};

/// The membership state machine: validates and applies ops, numbering epochs.
/// Pure bookkeeping — the runtime controllers execute the data movement.
class Membership {
 public:
  Membership(std::uint32_t num_slots, std::uint32_t initial_active)
      : view_{0, std::vector<char>(num_slots, 0), {}} {
    const std::uint32_t n =
        initial_active == 0 ? num_slots : std::min(initial_active, num_slots);
    FPS_CHECK(n >= 1) << "elastic: need at least one active server slot";
    for (std::uint32_t m = 0; m < n; ++m) view_.active[m] = 1;
  }

  [[nodiscard]] const MembershipView& view() const noexcept { return view_; }
  [[nodiscard]] std::uint64_t epoch() const noexcept { return view_.epoch; }
  [[nodiscard]] const std::vector<char>& active() const noexcept { return view_.active; }
  [[nodiscard]] bool is_active(std::uint32_t rank) const noexcept {
    return rank < view_.active.size() && view_.active[rank] != 0;
  }

  /// The active set after `op` — what the planner replans onto. Aborts on an
  /// invalid op (adding an active slot, draining an inactive or last one).
  [[nodiscard]] std::vector<char> active_after(const ElasticOp& op) const {
    FPS_CHECK(op.rank < view_.active.size())
        << "elastic op targets slot " << op.rank << " of " << view_.active.size();
    std::vector<char> next = view_.active;
    if (op.add) {
      FPS_CHECK(next[op.rank] == 0) << "add_server: slot " << op.rank << " already active";
      next[op.rank] = 1;
    } else {
      FPS_CHECK(next[op.rank] != 0) << "drain_server: slot " << op.rank << " not active";
      next[op.rank] = 0;
      std::uint32_t remaining = 0;
      for (const char a : next) remaining += a != 0;
      FPS_CHECK(remaining >= 1) << "drain_server would leave zero active servers";
    }
    return next;
  }

  /// Commit a view change: install the post-op active set and slice
  /// assignment, bump the epoch. Called at the fence, after all migrations
  /// drained and every worker is parked.
  void commit(const ElasticOp& op, ps::Sharding sharding) {
    view_.active = active_after(op);
    view_.sharding = std::move(sharding);
    ++view_.epoch;
  }

 private:
  MembershipView view_;
};

}  // namespace fluentps::elastic
