// Active-set-aware slice replanning for elastic membership (DESIGN.md §14).
//
// EpsSlicer::rebalance (ps/slicing.cpp) replans for a changed server *count*
// with survivors packed at the low ranks. Elastic membership needs the same
// movement-aware algorithm over an arbitrary active *mask* of a fixed slot
// universe — slot 2 can drain while slots 0,1,3 stay, and a re-added slot
// keeps its old rank. replan() generalizes rebalance to that shape with the
// identical keep/pool/LPT structure and tie-breaks, so its plans degenerate
// to rebalance's on prefix masks.
#pragma once

#include <cstdint>
#include <vector>

#include "ps/slicing.h"

namespace fluentps::elastic {

/// A replanned assignment plus the slice movements that realize it.
struct Plan {
  ps::Sharding sharding;                        ///< over all slots; inactive = empty
  std::vector<ps::EpsSlicer::Migration> moves;  ///< every moved slice exactly once
};

/// Re-place `old` (slice assignment over the full slot universe) onto the
/// slots of `active`. Surviving active slots keep slices largest-first up to
/// the per-active-slot byte target; the excess plus everything owned by
/// deactivated slots is LPT-placed onto the least-loaded active slots.
/// Deterministic; the result is validated (exact coverage) and the plan is
/// checked for conservation (each moved slice appears once, bytes preserved).
[[nodiscard]] Plan replan(const ps::Sharding& old, const std::vector<char>& active);

/// Expand a sharding computed over the first `base.num_servers()` ranks to a
/// `num_slots`-slot universe by appending empty shards — the initial view
/// when `elastic.initial_servers` < num_servers.
[[nodiscard]] ps::Sharding expand_to_slots(ps::Sharding base, std::uint32_t num_slots);

}  // namespace fluentps::elastic
