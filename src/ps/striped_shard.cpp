#include "ps/striped_shard.h"

#include <algorithm>
#include <cstring>
#include <new>

#include "common/logging.h"
#include "ml/ops.h"

namespace fluentps::ps {
namespace {

constexpr std::size_t kAlignment = 64;  // one cache line, matches FrameBuffer

/// Aligned, *uninitialized* float buffer — the pages are not touched here, so
/// first_touch() decides their NUMA placement.
float* aligned_floats(std::size_t n) {
  if (n == 0) return nullptr;
  std::size_t bytes = n * sizeof(float);
  bytes = (bytes + kAlignment - 1) / kAlignment * kAlignment;  // valid aligned_alloc size
  auto* p = static_cast<float*>(std::aligned_alloc(kAlignment, bytes));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

StripedShard::StripedShard(std::vector<float> values, std::uint32_t num_stripes,
                           const std::vector<std::size_t>& slice_lengths,
                           bool defer_first_touch)
    : data_(aligned_floats(values.size())),
      size_(values.size()),
      requested_stripes_(std::max<std::uint32_t>(num_stripes, 1)) {
  const std::size_t n = size_;
  const std::size_t max_stripes =
      slice_lengths.empty() ? std::max<std::size_t>(n, 1) : slice_lengths.size();
  const std::size_t s =
      std::clamp<std::size_t>(num_stripes, 1, std::max<std::size_t>(max_stripes, 1));
  stripes_ = std::vector<Stripe>(s);
  layout_stripes(n, slice_lengths);
  if (defer_first_touch) {
    init_ = std::move(values);
    untouched_.store(stripes_.size(), std::memory_order_release);
  } else if (n > 0) {
    std::memcpy(data_.get(), values.data(), n * sizeof(float));
  }
}

void StripedShard::layout_stripes(std::size_t n, const std::vector<std::size_t>& slice_lengths) {
  const std::size_t s = stripes_.size();
  // Candidate boundaries: slice boundaries when given, else every element.
  std::vector<std::size_t> bounds;  // cumulative prefix ends
  if (!slice_lengths.empty()) {
    std::size_t acc = 0;
    bounds.reserve(slice_lengths.size());
    for (const std::size_t len : slice_lengths) {
      acc += len;
      bounds.push_back(acc);
    }
    FPS_CHECK(acc == n) << "slice lengths sum " << acc << " != shard size " << n;
  }
  if (slice_lengths.empty()) {
    // Near-equal contiguous element ranges.
    for (std::size_t i = 0; i < s; ++i) {
      stripes_[i].begin = n * i / s;
      stripes_[i].end = n * (i + 1) / s;
    }
  } else {
    // Greedy contiguous grouping of slices: advance the stripe cut once the
    // running total passes the proportional target, keeping every slice
    // wholly inside one stripe.
    std::size_t stripe = 0;
    std::size_t begin = 0;
    for (std::size_t b = 0; b < bounds.size(); ++b) {
      const std::size_t remaining_slices = bounds.size() - b - 1;
      const bool must_cut = remaining_slices < (s - stripe - 1);  // fewer slices than stripes
      const std::size_t target = n * (stripe + 1) / s;
      if (stripe + 1 < s && (must_cut || bounds[b] >= target)) {
        stripes_[stripe].begin = begin;
        stripes_[stripe].end = bounds[b];
        begin = bounds[b];
        ++stripe;
      }
    }
    stripes_[stripe].begin = begin;
    stripes_[stripe].end = n;
    for (std::size_t i = stripe + 1; i < s; ++i) {  // degenerate: empty tail stripes
      stripes_[i].begin = stripes_[i].end = n;
    }
  }
}

void StripedShard::reconfigure(std::vector<float> values,
                               const std::vector<std::size_t>& slice_lengths) {
  FPS_CHECK(initialized()) << "reconfigure before deferred first-touch completed";
  const std::size_t n = values.size();
  const std::size_t max_stripes =
      slice_lengths.empty() ? std::max<std::size_t>(n, 1) : slice_lengths.size();
  const std::size_t s =
      std::clamp<std::size_t>(requested_stripes_, 1, std::max<std::size_t>(max_stripes, 1));
  data_.reset(aligned_floats(n));
  size_ = n;
  // Replacing the vector wholesale (mutexes are not movable) is safe under
  // the fence's quiescence guarantee: no other thread can be blocked on or
  // holding a stripe mutex here.
  stripes_ = std::vector<Stripe>(s);
  layout_stripes(n, slice_lengths);
  if (n > 0) std::memcpy(data_.get(), values.data(), n * sizeof(float));
}

void StripedShard::first_touch(std::size_t part, std::size_t parts) {
  FPS_CHECK(parts > 0 && part < parts) << "bad first-touch partition " << part << "/" << parts;
  std::size_t touched = 0;
  for (std::size_t i = part; i < stripes_.size(); i += parts) {
    const Stripe& st = stripes_[i];
    if (st.end > st.begin) {
      // The write below is the first touch of these pages: the kernel backs
      // them with memory local to the calling thread's NUMA node.
      std::memcpy(data_.get() + st.begin, init_.data() + st.begin,
                  (st.end - st.begin) * sizeof(float));
    }
    ++touched;
  }
  const std::size_t before = untouched_.fetch_sub(touched, std::memory_order_acq_rel);
  FPS_CHECK(before >= touched) << "first_touch partition touched twice";
  if (before == touched) init_ = {};  // last partition: release the parked copy
}

void StripedShard::apply_batch(std::span<const std::span<const float>> grads, float scale,
                               std::size_t part, std::size_t parts) {
  FPS_CHECK(parts > 0 && part < parts) << "bad apply partition " << part << "/" << parts;
  for (const auto& g : grads) {
    FPS_CHECK(g.size() == size_) << "gradient size " << g.size() << " != shard size " << size_;
  }
  // Stripe-outer, entry-inner: one lock acquisition per stripe per *batch*,
  // and per-element application order equals batch (arrival) order.
  for (std::size_t i = part; i < stripes_.size(); i += parts) {
    const Stripe& st = stripes_[i];
    if (st.begin == st.end) continue;
    std::scoped_lock lock(st.mu);
    const std::size_t len = st.end - st.begin;
    std::span<float> w(data_.get() + st.begin, len);
    for (const auto& g : grads) {
      ml::axpy(scale, g.subspan(st.begin, len), w);
    }
  }
}

double StripedShard::apply_exclusive_with_significance(std::span<const float> g, float scale) {
  FPS_CHECK(g.size() == size_) << "gradient size " << g.size() << " != shard size " << size_;
  lock_all();
  // Gradient significance for dynamic PSSP: SF(g, w) = |g| / |w| over this
  // shard (Gaia's significance filter applied at shard granularity), against
  // the pre-apply parameter values.
  std::span<float> data(data_.get(), size_);
  const double wn = ml::l2_norm(data);
  const double gn = ml::l2_norm(g);
  const double sf = wn > 0.0 ? gn / wn : 0.0;
  ml::axpy(scale, g, data);
  unlock_all();
  return sf;
}

void StripedShard::copy_out(std::span<float> out) const {
  FPS_CHECK(out.size() == size_) << "copy_out size " << out.size() << " != shard size " << size_;
  for (const Stripe& st : stripes_) {
    if (st.begin == st.end) continue;
    std::scoped_lock lock(st.mu);
    ml::copy(std::span<const float>(data_.get() + st.begin, st.end - st.begin),
             out.subspan(st.begin, st.end - st.begin));
  }
}

std::vector<float> StripedShard::snapshot() const {
  std::vector<float> out(size_);
  copy_out(out);
  return out;
}

void StripedShard::lock_all() const {
  for (const Stripe& st : stripes_) st.mu.lock();  // fixed order: no deadlock
}

void StripedShard::unlock_all() const {
  for (auto it = stripes_.rbegin(); it != stripes_.rend(); ++it) it->mu.unlock();
}

}  // namespace fluentps::ps
