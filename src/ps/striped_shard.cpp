#include "ps/striped_shard.h"

#include <algorithm>

#include "common/logging.h"
#include "ml/ops.h"

namespace fluentps::ps {

StripedShard::StripedShard(std::vector<float> values, std::uint32_t num_stripes,
                           const std::vector<std::size_t>& slice_lengths)
    : data_(std::move(values)) {
  const std::size_t n = data_.size();
  // Candidate boundaries: slice boundaries when given, else every element.
  std::vector<std::size_t> bounds;  // cumulative prefix ends
  if (!slice_lengths.empty()) {
    std::size_t acc = 0;
    bounds.reserve(slice_lengths.size());
    for (const std::size_t len : slice_lengths) {
      acc += len;
      bounds.push_back(acc);
    }
    FPS_CHECK(acc == n) << "slice lengths sum " << acc << " != shard size " << n;
  }
  const std::size_t max_stripes =
      slice_lengths.empty() ? std::max<std::size_t>(n, 1) : slice_lengths.size();
  const std::size_t s =
      std::clamp<std::size_t>(num_stripes, 1, std::max<std::size_t>(max_stripes, 1));
  stripes_ = std::vector<Stripe>(s);
  if (slice_lengths.empty()) {
    // Near-equal contiguous element ranges.
    for (std::size_t i = 0; i < s; ++i) {
      stripes_[i].begin = n * i / s;
      stripes_[i].end = n * (i + 1) / s;
    }
  } else {
    // Greedy contiguous grouping of slices: advance the stripe cut once the
    // running total passes the proportional target, keeping every slice
    // wholly inside one stripe.
    std::size_t stripe = 0;
    std::size_t begin = 0;
    for (std::size_t b = 0; b < bounds.size(); ++b) {
      const std::size_t remaining_slices = bounds.size() - b - 1;
      const bool must_cut = remaining_slices < (s - stripe - 1);  // unreachable by clamp
      const std::size_t target = n * (stripe + 1) / s;
      if (stripe + 1 < s && (must_cut || bounds[b] >= target)) {
        stripes_[stripe].begin = begin;
        stripes_[stripe].end = bounds[b];
        begin = bounds[b];
        ++stripe;
      }
    }
    stripes_[stripe].begin = begin;
    stripes_[stripe].end = n;
    for (std::size_t i = stripe + 1; i < s; ++i) {  // degenerate: empty tail stripes
      stripes_[i].begin = stripes_[i].end = n;
    }
  }
}

void StripedShard::apply_batch(std::span<const std::span<const float>> grads, float scale) {
  for (const auto& g : grads) {
    FPS_CHECK(g.size() == data_.size())
        << "gradient size " << g.size() << " != shard size " << data_.size();
  }
  // Stripe-outer, entry-inner: one lock acquisition per stripe per *batch*,
  // and per-element application order equals batch (arrival) order.
  for (const Stripe& st : stripes_) {
    if (st.begin == st.end) continue;
    std::scoped_lock lock(st.mu);
    const std::size_t len = st.end - st.begin;
    std::span<float> w(data_.data() + st.begin, len);
    for (const auto& g : grads) {
      ml::axpy(scale, g.subspan(st.begin, len), w);
    }
  }
}

double StripedShard::apply_exclusive_with_significance(std::span<const float> g, float scale) {
  FPS_CHECK(g.size() == data_.size())
      << "gradient size " << g.size() << " != shard size " << data_.size();
  lock_all();
  // Gradient significance for dynamic PSSP: SF(g, w) = |g| / |w| over this
  // shard (Gaia's significance filter applied at shard granularity), against
  // the pre-apply parameter values.
  const double wn = ml::l2_norm(data_);
  const double gn = ml::l2_norm(g);
  const double sf = wn > 0.0 ? gn / wn : 0.0;
  ml::axpy(scale, g, data_);
  unlock_all();
  return sf;
}

void StripedShard::copy_out(std::span<float> out) const {
  FPS_CHECK(out.size() == data_.size())
      << "copy_out size " << out.size() << " != shard size " << data_.size();
  for (const Stripe& st : stripes_) {
    if (st.begin == st.end) continue;
    std::scoped_lock lock(st.mu);
    std::copy(data_.begin() + static_cast<std::ptrdiff_t>(st.begin),
              data_.begin() + static_cast<std::ptrdiff_t>(st.end), out.begin() + static_cast<std::ptrdiff_t>(st.begin));
  }
}

std::vector<float> StripedShard::snapshot() const {
  std::vector<float> out(data_.size());
  copy_out(out);
  return out;
}

void StripedShard::lock_all() const {
  for (const Stripe& st : stripes_) st.mu.lock();  // fixed order: no deadlock
}

void StripedShard::unlock_all() const {
  for (auto it = stripes_.rbegin(); it != stripes_.rend(); ++it) it->mu.unlock();
}

}  // namespace fluentps::ps
