#include "ps/sync_engine.h"

#include <algorithm>

#include "common/logging.h"

namespace fluentps::ps {

DprMode parse_dpr_mode(const std::string& s) {
  if (s == "soft" || s == "soft_barrier") return DprMode::kSoftBarrier;
  if (s == "lazy") return DprMode::kLazy;
  FPS_CHECK(false) << "unknown DPR mode: " << s;
  return DprMode::kLazy;
}

const char* to_string(DprMode m) noexcept {
  return m == DprMode::kLazy ? "lazy" : "soft";
}

SyncEngine::SyncEngine(Spec spec)
    : num_workers_(spec.num_workers),
      mode_(spec.mode),
      model_(std::move(spec.model)),
      rng_(spec.seed, /*stream=*/0xC0ED),
      progress_of_(spec.num_workers, -1),
      last_push_of_(spec.num_workers, -1),
      significance_of_(spec.num_workers, 0.0) {
  FPS_CHECK(num_workers_ > 0) << "SyncEngine needs at least one worker";
  FPS_CHECK(model_.pull && model_.push) << "SyncEngine needs both conditions";
}

void SyncEngine::note_progress(std::uint32_t worker, std::int64_t progress) {
  FPS_CHECK(worker < num_workers_) << "worker rank out of range: " << worker;
  progress_of_[worker] = std::max(progress_of_[worker], progress);
  fastest_ = std::max(fastest_, progress);
}

std::int64_t SyncEngine::slowest() const noexcept {
  std::int64_t lo = progress_of_.empty() ? -1 : progress_of_[0];
  for (const std::int64_t p : progress_of_) lo = std::min(lo, p);
  return lo;
}

void SyncEngine::fill_view(SyncView& view) const {
  view.v_train = v_train_;
  view.num_workers = num_workers_;
  view.fastest = fastest_;
  view.slowest = slowest();
  const auto it = counts_.find(v_train_);
  view.count_at_vtrain = it != counts_.end() ? it->second : 0;
  view.count_at = [this](std::int64_t i) -> std::uint32_t {
    const auto cit = counts_.find(i);
    return cit != counts_.end() ? cit->second : 0;
  };
  view.significance_of = [this](std::uint32_t w) -> double {
    return w < significance_of_.size() ? significance_of_[w] : 0.0;
  };
  view.mean_significance = mean_significance_;
}

SyncView SyncEngine::view() const {
  SyncView v;
  fill_view(v);
  return v;
}

std::size_t SyncEngine::buffered() const noexcept {
  std::size_t n = soft_buffer_.size();
  for (const auto& [p, dq] : lazy_buffer_) n += dq.size();
  return n;
}

bool SyncEngine::on_pull(std::uint32_t worker, std::int64_t progress, std::uint64_t request_id) {
  note_progress(worker, progress);
  SyncView view;
  fill_view(view);
  const PullCtx ctx{worker, progress, /*initial=*/true};
  if (model_.pull(ctx, view, rng_)) {
    staleness_served_.add(std::max<std::int64_t>(progress - v_train_, 0));
    return true;
  }
  ++dpr_total_;
  const Buffered entry{worker, progress, request_id, v_train_};
  if (mode_ == DprMode::kLazy) {
    // Algorithm 1 line 7: index the lazy pull buffer by the *requester's*
    // progress; released when V_train catches up to it. Requests already at
    // or behind V_train (possible after a runtime condition change) are
    // keyed at V_train so the next advance flushes them.
    lazy_buffer_[std::max(progress, v_train_)].push_back(entry);
  } else {
    soft_buffer_.push_back(entry);
  }
  return false;
}

void SyncEngine::release(const Buffered& b, std::vector<std::uint64_t>& out) {
  staleness_served_.add(std::max<std::int64_t>(b.progress - v_train_, 0));
  release_delay_.add(std::max<std::int64_t>(v_train_ - b.v_at_arrival, 0));
  out.push_back(b.request_id);
}

void SyncEngine::advance(std::vector<std::uint64_t>& released) {
  SyncView view;
  fill_view(view);
  while (model_.push(view)) {
    if (mode_ == DprMode::kLazy) {
      // Execute callbacks[V_train] (lines 18-21), then V_train++.
      const auto it = lazy_buffer_.find(v_train_);
      if (it != lazy_buffer_.end()) {
        for (const Buffered& b : it->second) release(b, released);
        lazy_buffer_.erase(it);
      }
      ++v_train_;
    } else {
      ++v_train_;
      // Soft barrier: re-check every buffered request against the pull
      // condition under the advanced V_train; release as soon as satisfied.
      fill_view(view);
      for (auto it = soft_buffer_.begin(); it != soft_buffer_.end();) {
        const PullCtx ctx{it->worker, it->progress, /*initial=*/false};
        if (model_.pull(ctx, view, rng_)) {
          release(*it, released);
          it = soft_buffer_.erase(it);
        } else {
          ++it;
        }
      }
    }
    fill_view(view);
  }
}

std::vector<std::uint64_t> SyncEngine::on_push(std::uint32_t worker, std::int64_t progress,
                                               double sf) {
  note_progress(worker, progress);
  last_push_of_[worker] = std::max(last_push_of_[worker], progress);
  ++counts_[progress];
  if (sf > 0.0) {
    significance_of_[worker] = sf;
    ++significance_samples_;
    const double beta = 1.0 / static_cast<double>(std::min<std::int64_t>(significance_samples_, 256));
    mean_significance_ += beta * (sf - mean_significance_);
  }
  std::vector<std::uint64_t> released;
  advance(released);
  return released;
}

void SyncEngine::save(io::Writer& w) const {
  w.put<std::uint32_t>(0x53594E43);  // "SYNC"
  w.put<std::uint32_t>(num_workers_);
  w.put<std::int64_t>(v_train_);
  w.put<std::int64_t>(fastest_);
  w.put_vector(progress_of_);
  w.put_vector(last_push_of_);
  // counts_ serialized sorted so the blob is deterministic.
  std::vector<std::pair<std::int64_t, std::uint32_t>> counts(counts_.begin(), counts_.end());
  std::sort(counts.begin(), counts.end());
  w.put<std::uint64_t>(counts.size());
  for (const auto& [p, c] : counts) {
    w.put<std::int64_t>(p);
    w.put<std::uint32_t>(c);
  }
  w.put_vector(significance_of_);
  w.put<double>(mean_significance_);
  w.put<std::int64_t>(significance_samples_);
  w.put<std::int64_t>(dpr_total_);
  const Rng::State rs = rng_.save_state();
  w.put<std::uint64_t>(rs.state);
  w.put<double>(rs.spare);
  w.put<std::uint8_t>(rs.has_spare);
}

bool SyncEngine::load(io::Reader& r) {
  if (r.get<std::uint32_t>() != 0x53594E43) return false;
  if (r.get<std::uint32_t>() != num_workers_) return false;
  v_train_ = r.get<std::int64_t>();
  fastest_ = r.get<std::int64_t>();
  progress_of_ = r.get_vector<std::int64_t>();
  last_push_of_ = r.get_vector<std::int64_t>();
  counts_.clear();
  const auto n = r.get<std::uint64_t>();
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    const auto p = r.get<std::int64_t>();
    counts_[p] = r.get<std::uint32_t>();
  }
  significance_of_ = r.get_vector<double>();
  mean_significance_ = r.get<double>();
  significance_samples_ = r.get<std::int64_t>();
  dpr_total_ = r.get<std::int64_t>();
  Rng::State rs;
  rs.state = r.get<std::uint64_t>();
  rs.spare = r.get<double>();
  rs.has_spare = r.get<std::uint8_t>();
  rng_.restore_state(rs);
  // Buffered pulls die with the crash; the retransmit path reissues them.
  lazy_buffer_.clear();
  soft_buffer_.clear();
  return r.ok() && progress_of_.size() == num_workers_ &&
         last_push_of_.size() == num_workers_ && significance_of_.size() == num_workers_;
}

void SyncEngine::reset_progress(const std::vector<std::int64_t>& last_push) {
  FPS_CHECK(last_push.size() == num_workers_)
      << "reset_progress worker count " << last_push.size() << " != " << num_workers_;
  v_train_ = 0;
  fastest_ = -1;
  std::fill(progress_of_.begin(), progress_of_.end(), -1);
  std::fill(last_push_of_.begin(), last_push_of_.end(), -1);
  counts_.clear();
  lazy_buffer_.clear();
  soft_buffer_.clear();
  std::fill(significance_of_.begin(), significance_of_.end(), 0.0);
  mean_significance_ = 0.0;
  significance_samples_ = 0;
  std::int64_t max_p = -1;
  for (const std::int64_t p : last_push) max_p = std::max(max_p, p);
  for (std::int64_t p = 0; p <= max_p; ++p) {
    for (std::uint32_t w = 0; w < num_workers_; ++w) {
      // Zero significance, like checkpoint-recovery synthesis: the gradients
      // themselves live in the shard already. Released ids are discarded —
      // the DPR buffers were just cleared, so nothing can be pending.
      if (last_push[w] >= p) (void)on_push(w, p, 0.0);
    }
  }
}

void SyncEngine::set_pull_condition(PullCondition cond) {
  FPS_CHECK(static_cast<bool>(cond)) << "null pull condition";
  model_.pull = std::move(cond);
}

void SyncEngine::set_push_condition(PushCondition cond) {
  FPS_CHECK(static_cast<bool>(cond)) << "null push condition";
  model_.push = std::move(cond);
  // A relaxed push condition may unblock progress immediately; the caller
  // observes the release on the next on_push. (We cannot release here: the
  // released ids must flow back through the server's response path.)
}

}  // namespace fluentps::ps
