#include "ps/conditions.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.h"

namespace fluentps::ps {

std::string SyncModelSpec::label() const {
  std::ostringstream os;
  if (kind == "bsp" || kind == "asp") {
    os << kind;
  } else if (kind == "ssp") {
    os << "ssp(s=" << staleness << ")";
  } else if (kind == "dsps") {
    os << "dsps(s0=" << staleness << ")";
  } else if (kind == "drop") {
    os << "drop(Nt=" << drop_nt << ")";
  } else if (kind == "pssp") {
    os << "pssp(s=" << staleness << ",P=" << prob << ")";
  } else if (kind == "pssp_dynamic") {
    os << "pssp_dyn(s=" << staleness << ",a=" << (alpha_significance ? std::string("SF") : std::to_string(alpha))
       << ")";
  } else {
    os << kind;
  }
  return os.str();
}

double pssp_constant_probability(std::int64_t s, std::int64_t k, double c) noexcept {
  if (k < s) return 0.0;
  return std::clamp(c, 0.0, 1.0);
}

double pssp_dynamic_probability(std::int64_t s, std::int64_t k, double alpha) noexcept {
  if (k < s) return 0.0;
  return std::clamp(alpha / (1.0 + std::exp(static_cast<double>(s - k))), 0.0, 1.0);
}

double ssp_regret_bound(double F, double L, std::int64_t s, std::uint32_t N,
                        std::int64_t T) noexcept {
  return 4.0 * F * L *
         std::sqrt(2.0 * static_cast<double>(s + 1) * static_cast<double>(N) /
                   static_cast<double>(T));
}

double pssp_regret_bound(double F, double L, std::int64_t s, double c, std::uint32_t N,
                         std::int64_t T) noexcept {
  return 4.0 * F * L *
         std::sqrt(2.0 * (static_cast<double>(s) + 1.0 / c) * static_cast<double>(N) /
                   static_cast<double>(T));
}

namespace {

PushCondition count_push_condition(std::uint32_t needed) {
  return [needed](const SyncView& view) { return view.count_at_vtrain >= needed; };
}

/// Deterministic bounded-staleness pull condition: progress < V_train + s.
bool ssp_pull(std::int64_t progress, std::int64_t v_train, std::int64_t s) noexcept {
  return progress < v_train + s;
}

}  // namespace

SyncModel make_sync_model(const SyncModelSpec& spec, std::uint32_t num_workers) {
  FPS_CHECK(num_workers > 0) << "need at least one worker";
  SyncModel model;
  const std::uint32_t n = num_workers;

  if (spec.kind == "bsp") {
    model.pull = [](const PullCtx& ctx, const SyncView& view, Rng&) {
      return ssp_pull(ctx.progress, view.v_train, 0);
    };
    model.push = count_push_condition(n);
    return model;
  }

  if (spec.kind == "asp") {
    model.pull = [](const PullCtx&, const SyncView&, Rng&) { return true; };
    // V_train still advances for bookkeeping; it never gates a pull.
    model.push = count_push_condition(n);
    return model;
  }

  if (spec.kind == "ssp") {
    const std::int64_t s = spec.staleness;
    model.pull = [s](const PullCtx& ctx, const SyncView& view, Rng&) {
      return ssp_pull(ctx.progress, view.v_train, s);
    };
    model.push = count_push_condition(n);
    return model;
  }

  if (spec.kind == "dsps") {
    // Adaptive staleness: s(t) follows an EMA of the observed progress spread
    // (fastest - slowest), clamped to [min_s, max_s]. The shared state is
    // mutated during pull evaluation, which the engine serializes.
    struct DspsState {
      double ema_gap;
      std::int64_t s;
    };
    auto state = std::make_shared<DspsState>(
        DspsState{static_cast<double>(spec.staleness), std::max<std::int64_t>(spec.staleness, 1)});
    auto s_view = std::make_shared<std::int64_t>(state->s);
    const double beta = spec.dsps_ema;
    const std::int64_t lo = spec.dsps_min_s;
    const std::int64_t hi = spec.dsps_max_s;
    model.pull = [state, s_view, beta, lo, hi](const PullCtx& ctx, const SyncView& view, Rng&) {
      if (view.fastest >= 0 && view.slowest >= 0) {
        const auto gap = static_cast<double>(view.fastest - view.slowest);
        state->ema_gap = (1.0 - beta) * state->ema_gap + beta * gap;
        state->s = std::clamp<std::int64_t>(std::llround(state->ema_gap) + 1, lo, hi);
        *s_view = state->s;
      }
      return ssp_pull(ctx.progress, view.v_train, state->s);
    };
    model.push = count_push_condition(n);
    model.adaptive_s = s_view;
    return model;
  }

  if (spec.kind == "drop") {
    const std::uint32_t nt = spec.drop_nt > 0 ? std::min(spec.drop_nt, n)
                                              : std::max<std::uint32_t>(1, (2 * n + 2) / 3);
    model.pull = [](const PullCtx& ctx, const SyncView& view, Rng&) {
      return ssp_pull(ctx.progress, view.v_train, 0);
    };
    model.push = count_push_condition(nt);
    return model;
  }

  if (spec.kind == "pssp") {
    const std::int64_t s = spec.staleness;
    const double c = spec.prob;
    model.pull = [s, c](const PullCtx& ctx, const SyncView& view, Rng& rng) {
      if (ssp_pull(ctx.progress, view.v_train, s)) return true;
      if (!ctx.initial) return false;  // coin was already rolled on arrival
      const std::int64_t k = ctx.progress - view.v_train;
      const double p = pssp_constant_probability(s, k, c);
      return rng.uniform() >= p;  // pass with probability 1-P (Table III: rand > P)
    };
    model.push = count_push_condition(n);
    return model;
  }

  if (spec.kind == "pssp_dynamic") {
    const std::int64_t s = spec.staleness;
    const double alpha = spec.alpha;
    const bool use_sf = spec.alpha_significance;
    model.uses_significance = use_sf;
    model.pull = [s, alpha, use_sf](const PullCtx& ctx, const SyncView& view, Rng& rng) {
      if (ssp_pull(ctx.progress, view.v_train, s)) return true;
      if (!ctx.initial) return false;
      double a = alpha;
      if (use_sf && view.significance_of) {
        // alpha = SF-scaled: block harder when recent gradients on this shard
        // are still significant relative to the long-run mean (early/steep
        // phases of training), relax when updates have become insignificant.
        const double sf = view.significance_of(ctx.worker);
        const double ref = view.mean_significance;
        a = ref > 0.0 ? std::clamp(alpha * sf / ref, 0.0, 1.0) : alpha;
      }
      const std::int64_t k = ctx.progress - view.v_train;
      const double p = pssp_dynamic_probability(s, k, a);
      return rng.uniform() >= p;
    };
    model.push = count_push_condition(n);
    return model;
  }

  FPS_CHECK(false) << "unknown sync model kind: " << spec.kind;
  return model;
}

}  // namespace fluentps::ps
