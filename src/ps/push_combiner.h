// Combiner handoff for the server apply hot path (DESIGN.md §11).
//
// Concurrent push handlers (TCP reader threads) hand their gradient spans to
// this combiner, which coalesces everything currently queued into one striped
// sweep over the StripedShard. apply() blocks the caller until its gradient
// was applied — that blocking is load-bearing: it keeps zero-copy payloads
// (spans borrowing the transport's receive buffer) safe to queue without a
// copy, and preserves the apply-before-engine-count ordering per message.
//
// Three handoff mechanisms, selected by spec (all bit-identical per arrival
// order; the A/B oracle in tests/test_ring.cpp and test_hot_path.cpp holds
// them to that):
//
//  * mutex (lockfree=false): the legacy flat-combining queue under a mutex +
//    condvar — the A/B baseline, kept verbatim from PR 2.
//  * lock-free, no apply threads (lockfree=true, apply_threads=0): producers
//    enqueue tickets onto a bounded MPSC ring (common/mpsc_ring.h) and
//    whoever wins the combiner role drains it; waiters spin-yield on their
//    ticket's applied flag instead of parking on a condvar. A full ring is
//    backpressure, not blocking: the producer bumps ring_stalls and retries
//    (helping drain if the role is free) until a slot opens.
//  * dedicated drain (apply_threads >= 1): thread 0 drains the ring and
//    threads 1..T-1 sweep disjoint stripe partitions of each batch (stripe
//    i % T == t), rendezvousing through atomic sweep counters. Producers park
//    on their ticket's atomic (futex wait) since a drainer always exists.
//    Each apply thread first-touches its own stripe partition at startup and
//    optionally pins itself (common/affinity.h) so the stripes it sweeps stay
//    NUMA-local to it.
//
// Lock order: callers may hold engine_mu_; the combiner takes ring slots then
// stripe mutexes (engine_mu_ -> ring -> stripes), never the reverse.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "common/mpsc_ring.h"
#include "obs/telemetry.h"
#include "ps/striped_shard.h"

namespace fluentps::ps {

struct PushCombinerSpec {
  bool batch = true;      ///< off = apply each push individually (A/B baseline)
  bool lockfree = true;   ///< ring handoff vs legacy mutex flat combining
  std::uint32_t ring_depth = 1024;   ///< bounded MPSC ring capacity
  std::uint32_t apply_threads = 0;   ///< dedicated drain/apply threads (0 = none)
  bool pin_threads = false;          ///< pin apply threads via common/affinity.h
  unsigned pin_slot_base = 0;        ///< first affinity slot (rank * threads)
  obs::Telemetry* telemetry = nullptr;  ///< wait-free live metrics (nullable)
};

/// Per-apply pipeline stamps (obs::now_ns), filled only when the caller asks
/// for them: enqueue just before the handoff, drained when the consumer
/// collected the ticket into a sweep batch, applied once the write landed.
/// The consumer's drained_ns store is published to the producer by the
/// ticket's applied release/acquire edge.
struct ApplyTiming {
  std::uint64_t enqueue_ns = 0;
  std::uint64_t drained_ns = 0;
  std::uint64_t applied_ns = 0;
};

class PushCombiner {
 public:
  /// When apply_threads >= 1 the constructor spawns the pool, first-touches
  /// every stripe partition from its owning thread, and returns only once the
  /// shard is fully initialized (so `shard` may be built with
  /// defer_first_touch=true).
  PushCombiner(StripedShard& shard, PushCombinerSpec spec);
  ~PushCombiner();

  PushCombiner(const PushCombiner&) = delete;
  PushCombiner& operator=(const PushCombiner&) = delete;

  /// Apply w += scale * g, returning once the write landed (possibly as part
  /// of a coalesced sweep performed by another thread). When `timing` is
  /// non-null the three pipeline stamps are filled before returning (used by
  /// the server's span tracing; pass nullptr on untraced pushes — the stamps
  /// then cost nothing).
  void apply(std::span<const float> g, float scale, ApplyTiming* timing = nullptr);

  // --- observability -------------------------------------------------------

  /// Coalescing sweeps performed and the largest batch one sweep applied.
  [[nodiscard]] std::int64_t sweeps() const noexcept {
    return sweeps_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t max_batch() const noexcept {
    return max_batch_.load(std::memory_order_relaxed);
  }
  /// apply() calls that hit a full ring at least once (backpressure events).
  [[nodiscard]] std::int64_t ring_stalls() const noexcept {
    return ring_stalls_.load(std::memory_order_relaxed);
  }
  /// Deepest ring occupancy observed at enqueue time.
  [[nodiscard]] std::size_t ring_depth_high_water() const noexcept {
    return ring_depth_hw_.load(std::memory_order_relaxed);
  }
  /// Apply threads that successfully pinned themselves.
  [[nodiscard]] std::uint32_t pinned_threads() const noexcept {
    return pinned_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint32_t apply_threads() const noexcept { return num_threads_; }

 private:
  struct Ticket {
    std::span<const float> g;
    float scale = 0.0f;
    ApplyTiming* timing = nullptr;  ///< optional pipeline stamps (producer-owned)
    std::atomic<bool> applied{false};
  };

  void apply_mutex(Ticket& t);
  void apply_lockfree(Ticket& t);
  void apply_via_drain_thread(Ticket& t);
  /// Push onto the ring, spinning with backpressure accounting on full.
  void enqueue(Ticket* t);
  /// Single-consumer: pop everything queued and sweep it (one batch at a
  /// time, re-polling after each sweep like the mutex combiner re-checks its
  /// queue). `parts` > 1 fans each sweep out to the helper threads.
  void drain_ring();
  /// Apply one collected batch across all partitions (rendezvous with the
  /// helper pool when it exists) and retire the tickets.
  void sweep(std::vector<Ticket*>& batch);
  void note_sweep(std::size_t batch_size);
  void drain_thread_main();
  void helper_thread_main(std::size_t part);
  void pin_self(std::size_t part);

  StripedShard& shard_;
  const bool batch_;
  const bool lockfree_;
  const std::uint32_t num_threads_;
  const bool pin_;
  const unsigned pin_slot_base_;

  MpscRing<Ticket*> ring_;

  // Legacy mutex flat combining (A/B baseline).
  std::mutex batch_mu_;
  std::condition_variable batch_cv_;
  std::deque<Ticket*> batch_queue_;
  bool batch_combining_ = false;

  // Lock-free combiner role (apply_threads == 0).
  std::atomic<bool> combining_{false};

  // Dedicated drain + helper pool (apply_threads >= 1). Producers bump
  // posted_ (futex notify) after a successful enqueue; the drain thread
  // sleeps on it when the ring runs dry. Sweeps are published to helpers via
  // sweep_seq_ and joined via sweep_pending_.
  std::atomic<std::uint64_t> posted_{0};
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> sweep_seq_{0};
  std::atomic<std::uint32_t> sweep_pending_{0};
  std::vector<Ticket*> drain_batch_;                 // drainer-only scratch
  std::vector<std::span<const float>> sweep_grads_;  // published batch (helpers read)
  float sweep_scale_ = 0.0f;
  std::atomic<std::size_t> init_remaining_{0};
  std::vector<std::thread> pool_;

  std::atomic<std::int64_t> sweeps_{0};
  std::atomic<std::size_t> max_batch_{0};
  std::atomic<std::int64_t> ring_stalls_{0};
  std::atomic<std::size_t> ring_depth_hw_{0};
  std::atomic<std::uint32_t> pinned_{0};

  // Live wait-free instruments, registered once at construction when a
  // telemetry registry is attached (nullptr otherwise — recording sites
  // guard on them, so telemetry=off costs one predicted branch).
  obs::Histogram* batch_hist_ = nullptr;   // server.combiner_batch
  obs::Counter* stall_counter_ = nullptr;  // server.ring_stall_events
};

}  // namespace fluentps::ps
