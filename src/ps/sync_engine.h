// Per-shard synchronization state machine (Algorithm 1, server side).
//
// Pure deterministic logic, transport-agnostic: the same engine instance is
// driven by the thread-backend Server (from its dispatch thread) and by the
// DES runtime (from simulation events). This is design decision D1 in
// DESIGN.md — one tested code path for every backend.
//
// DPR execution (Section III-C):
//  * kLazy — a delayed pull request is buffered under the *requester's
//    progress* and executed only when V_train reaches it, so the fast worker
//    receives fully updated parameters at the cost of a longer wait
//    (Figure 3(b)).
//  * kSoftBarrier — buffered requests are re-checked against the pull
//    condition every time V_train advances and released as soon as it holds,
//    returning sooner but with staler parameters (Figure 3(a)).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/serialization.h"
#include "common/stats.h"
#include "ps/conditions.h"

namespace fluentps::ps {

enum class DprMode : std::uint8_t { kSoftBarrier = 0, kLazy = 1 };

/// Parse "soft" / "lazy" (aborts on anything else).
DprMode parse_dpr_mode(const std::string& s);
const char* to_string(DprMode m) noexcept;

class SyncEngine {
 public:
  struct Spec {
    std::uint32_t num_workers = 0;
    DprMode mode = DprMode::kLazy;
    SyncModel model;
    std::uint64_t seed = 1;  ///< seeds the condition-evaluation RNG (PSSP coins)
  };

  explicit SyncEngine(Spec spec);

  /// Handle a pull request from `worker` reporting `progress` (it asks for
  /// the parameters of iteration progress+1). Returns true if the server
  /// should respond immediately; false means the request was buffered (it is
  /// now a DPR) and its id will come back from a later on_push() call.
  bool on_pull(std::uint32_t worker, std::int64_t progress, std::uint64_t request_id);

  /// Handle a push from `worker` for iteration `progress` with gradient
  /// significance `sf` (pass 0 when unused). Returns the request ids of
  /// buffered pulls released by this push, in deterministic order.
  std::vector<std::uint64_t> on_push(std::uint32_t worker, std::int64_t progress, double sf = 0.0);

  /// Install a new pull/push condition at runtime (the paper's SetcondPull /
  /// SetcondPush). Buffered requests are re-evaluated on the next push.
  void set_pull_condition(PullCondition cond);
  void set_push_condition(PushCondition cond);

  // --- observers ------------------------------------------------------

  [[nodiscard]] std::int64_t v_train() const noexcept { return v_train_; }
  [[nodiscard]] std::int64_t fastest() const noexcept { return fastest_; }
  [[nodiscard]] std::int64_t slowest() const noexcept;
  /// Last known progress of `worker` (-1 = unknown), from pushes or pulls.
  [[nodiscard]] std::int64_t progress_of(std::uint32_t worker) const noexcept {
    return worker < progress_of_.size() ? progress_of_[worker] : -1;
  }
  /// Progress of the last *push* counted for `worker` (-1 = none). Pulls do
  /// not move this. Crash-restart recovery keys on it: pushes are sequential
  /// per worker, so (last_push_of, p_acked] is exactly the set of counts a
  /// checkpoint restore rolled back.
  [[nodiscard]] std::int64_t last_push_of(std::uint32_t worker) const noexcept {
    return worker < last_push_of_.size() ? last_push_of_[worker] : -1;
  }
  [[nodiscard]] std::uint32_t num_workers() const noexcept { return num_workers_; }
  /// True when the installed model's conditions read gradient significance
  /// (servers then compute SF = |g|/|w| per push; otherwise they skip it).
  [[nodiscard]] bool uses_significance() const noexcept { return model_.uses_significance; }
  [[nodiscard]] std::size_t buffered() const noexcept;  ///< DPRs currently waiting

  /// Total delayed pull requests so far (the paper's "number of DPRs").
  [[nodiscard]] std::int64_t dpr_total() const noexcept { return dpr_total_; }

  /// Distribution of (progress - V_train) at the moment a pull was *served*
  /// — the staleness gap of parameters handed to workers. For SSP this never
  /// exceeds s (property-tested).
  [[nodiscard]] const IntHistogram& staleness_served() const noexcept { return staleness_served_; }

  /// Distribution of V_train advances a DPR waited before release.
  [[nodiscard]] const IntHistogram& release_delay() const noexcept { return release_delay_; }

  /// A snapshot view (for metrics/tests; conditions receive a live one).
  [[nodiscard]] SyncView view() const;

  // --- crash-restart persistence (fault subsystem) --------------------

  /// Serialize synchronization state (V_train, progress vector, counts,
  /// significance state, rng stream position). Buffered DPRs are *not*
  /// persisted: a crash loses them and the reliability layer's retransmitted
  /// pulls re-enter on_pull after recovery. Monitoring histograms are not
  /// persisted either.
  void save(io::Writer& w) const;

  /// Restore from a save() blob. Returns false (leaving the engine in an
  /// unspecified but valid state) on a format mismatch. Conditions/mode come
  /// from the constructor spec, which must match the saved num_workers.
  [[nodiscard]] bool load(io::Reader& r);

  /// Chain-failover reset (replica subsystem): discard all progress state and
  /// deterministically re-count push progress 0..last_push[w] for every
  /// worker, progress-outer / worker-inner — the same replay order no matter
  /// which message interleaving produced `last_push` on the replica. Buffered
  /// DPRs are dropped (workers re-pull via their retry ladder after
  /// kPromote). Monitoring histograms keep their history; the RNG continues
  /// from its current stream position (sync *decisions* may diverge from an
  /// uncrashed engine — applied values never do).
  void reset_progress(const std::vector<std::int64_t>& last_push);

 private:
  struct Buffered {
    std::uint32_t worker;
    std::int64_t progress;
    std::uint64_t request_id;
    std::int64_t v_at_arrival;
  };

  void note_progress(std::uint32_t worker, std::int64_t progress);
  void fill_view(SyncView& view) const;
  void release(const Buffered& b, std::vector<std::uint64_t>& out);
  /// Advance V_train while the push condition holds; releases buffered pulls.
  void advance(std::vector<std::uint64_t>& released);

  std::uint32_t num_workers_;
  DprMode mode_;
  SyncModel model_;
  Rng rng_;

  std::int64_t v_train_ = 0;
  std::int64_t fastest_ = -1;
  std::vector<std::int64_t> progress_of_;         // per worker, -1 = unknown
  std::vector<std::int64_t> last_push_of_;        // per worker, -1 = no push yet
  std::unordered_map<std::int64_t, std::uint32_t> counts_;  // Count[i]

  std::map<std::int64_t, std::deque<Buffered>> lazy_buffer_;  // keyed by progress
  std::deque<Buffered> soft_buffer_;                          // re-check list

  std::vector<double> significance_of_;  // last push |g|/|w| per worker
  double mean_significance_ = 0.0;
  std::int64_t significance_samples_ = 0;

  std::int64_t dpr_total_ = 0;
  IntHistogram staleness_served_{128};
  IntHistogram release_delay_{128};
};

}  // namespace fluentps::ps
