// Unified read-path options (DESIGN.md §13): every dense and sparse pull
// flows through a `pull(KeyRange, ReadOptions)`-shaped entry point.
//
// Consistency levels:
//  * kStrong  — the pull is answered by the shard's head through its
//    SyncEngine (the legacy semantics: DPR buffering, staleness envelopes,
//    engine-gated release). This is the default; training workers use it.
//  * kBounded — the pull may be answered by ANY live chain node (head or
//    replica) whose applied horizon h satisfies h >= clock - max_staleness.
//    A replica that cannot satisfy the bound redirects the client to the
//    head (kPullRedirect), which always serves: the head is the chain's
//    ground truth, so a head read is the freshest state that exists and
//    never violates a bound by definition.
//
// Wire encoding: kPull/kSparsePull never used the `seq` header field (pulls
// are deduplicated by their ticket, not by sequence number — see
// SeqWindow's "seq 0 bypasses dedup" rule), so the staleness bound rides
// there: seq == 0 is a strong/legacy pull (frames stay byte-identical to
// every prior release) and seq == s + 1 is a bounded pull with
// max_staleness_clocks == s. Bounded kPullResp frames echo the serving
// node's horizon in `progress` and set seq == 1 when a replica (not the
// head) served, which is what the client-side staleness oracle checks.
#pragma once

#include <cstdint>
#include <limits>

namespace fluentps::ps {

enum class Consistency : std::uint8_t {
  kStrong = 0,   ///< head-only, engine-gated (legacy pull semantics)
  kBounded = 1,  ///< any chain node within max_staleness_clocks of the clock
};

/// Half-open range [begin, end) over the flat global parameter index space.
/// The default range covers everything — pull(KeyRange::all(), ...) is the
/// whole-model pull every call site used before this API existed.
struct KeyRange {
  std::uint64_t begin = 0;
  std::uint64_t end = std::numeric_limits<std::uint64_t>::max();

  [[nodiscard]] static constexpr KeyRange all() noexcept { return {}; }

  [[nodiscard]] constexpr bool is_all() const noexcept {
    return begin == 0 && end == std::numeric_limits<std::uint64_t>::max();
  }

  /// Does [begin, end) intersect the slice [offset, offset + length)?
  [[nodiscard]] constexpr bool intersects(std::uint64_t offset,
                                          std::uint64_t length) const noexcept {
    return begin < offset + length && offset < end;
  }
};

struct ReadOptions {
  /// The reader's clock: a training worker passes its iteration (exactly the
  /// `progress` the legacy pull overload carried); a read-only client passes
  /// the highest horizon it has observed in any response (monotone, so the
  /// bound below is meaningful without the client participating in training).
  std::int64_t clock = 0;

  /// kBounded: a serving node's applied horizon may trail `clock` by at most
  /// this many clocks; further behind, it must redirect to the head.
  std::int64_t max_staleness_clocks = 0;

  Consistency consistency = Consistency::kStrong;

  /// kBounded: spread reads round-robin across the shard's chain nodes.
  /// false = send every read to the head (still engine-bypassing).
  bool prefer_replica = true;

  /// Per-request timeout override in seconds; 0 = the client's RetryPolicy
  /// ladder (its first-attempt timeout) as before.
  double timeout = 0.0;

  [[nodiscard]] constexpr bool bounded() const noexcept {
    return consistency == Consistency::kBounded;
  }
};

/// Encode the staleness bound into the pull frame's `seq` field:
/// 0 = strong/legacy, s + 1 = bounded with max_staleness_clocks == s.
[[nodiscard]] inline std::uint64_t encode_read_bound(const ReadOptions& opts) noexcept {
  if (!opts.bounded()) return 0;
  const std::int64_t s = opts.max_staleness_clocks < 0 ? 0 : opts.max_staleness_clocks;
  return static_cast<std::uint64_t>(s) + 1;
}

/// True when a pull frame's seq marks a bounded read.
[[nodiscard]] inline bool is_bounded_read(std::uint64_t seq) noexcept { return seq != 0; }

/// max_staleness_clocks carried by a bounded pull frame (seq must be != 0).
[[nodiscard]] inline std::int64_t decode_read_bound(std::uint64_t seq) noexcept {
  return static_cast<std::int64_t>(seq - 1);
}

/// seq value of a kPullResp served by a replica (vs 0 for the head); lets
/// the client-side oracle check the bound only where it applies.
inline constexpr std::uint64_t kReplicaServedSeq = 1;

}  // namespace fluentps::ps
