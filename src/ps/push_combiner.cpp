#include "ps/push_combiner.h"

#include <algorithm>

#include "common/affinity.h"
#include "common/logging.h"

namespace fluentps::ps {

PushCombiner::PushCombiner(StripedShard& shard, PushCombinerSpec spec)
    : shard_(shard),
      batch_(spec.batch),
      lockfree_(spec.lockfree),
      num_threads_(spec.apply_threads),
      pin_(spec.pin_threads),
      pin_slot_base_(spec.pin_slot_base),
      ring_(std::max<std::uint32_t>(spec.ring_depth, 2)) {
  if (spec.telemetry != nullptr && spec.telemetry->registry != nullptr) {
    batch_hist_ = &spec.telemetry->registry->histogram("server.combiner_batch");
    stall_counter_ =
        &spec.telemetry->registry->counter("server.ring_stall_events");
  }
  if (num_threads_ >= 1) {
    init_remaining_.store(num_threads_, std::memory_order_release);
    pool_.reserve(num_threads_);
    pool_.emplace_back([this] { drain_thread_main(); });
    for (std::size_t t = 1; t < num_threads_; ++t) {
      pool_.emplace_back([this, t] { helper_thread_main(t); });
    }
    // Block until every apply thread pinned itself and first-touched its
    // stripe partition: the shard may have been built with deferred init, and
    // nothing may read it until placement is done.
    while (init_remaining_.load(std::memory_order_acquire) != 0) {
      std::this_thread::yield();
    }
  } else if (!shard_.initialized()) {
    shard_.first_touch(0, 1);
  }
}

PushCombiner::~PushCombiner() {
  if (pool_.empty()) return;
  stop_.store(true, std::memory_order_release);
  // Kick both rendezvous points; threads check stop_ on wake.
  posted_.fetch_add(1, std::memory_order_release);
  posted_.notify_all();
  sweep_seq_.fetch_add(1, std::memory_order_release);
  sweep_seq_.notify_all();
  for (std::thread& th : pool_) th.join();
}

void PushCombiner::apply(std::span<const float> g, float scale, ApplyTiming* timing) {
  if (timing != nullptr) timing->enqueue_ns = obs::now_ns();
  if (!batch_) {
    // Per-message baseline: one single-entry sweep, no handoff at all.
    if (timing != nullptr) timing->drained_ns = timing->enqueue_ns;
    const std::span<const float> one[] = {g};
    shard_.apply_batch(one, scale);
    note_sweep(1);
    if (timing != nullptr) timing->applied_ns = obs::now_ns();
    return;
  }
  Ticket t;
  t.g = g;
  t.scale = scale;
  t.timing = timing;
  if (!lockfree_) {
    apply_mutex(t);
  } else if (num_threads_ >= 1) {
    apply_via_drain_thread(t);
  } else {
    apply_lockfree(t);
  }
  // The retiring thread stamped drained_ns before the applied release-store,
  // so it is visible here; the producer stamps its own completion.
  if (timing != nullptr) timing->applied_ns = obs::now_ns();
}

// --- legacy mutex flat combining (A/B baseline, verbatim from PR 2) --------

void PushCombiner::apply_mutex(Ticket& t) {
  std::unique_lock lock(batch_mu_);
  batch_queue_.push_back(&t);
  if (batch_combining_) {
    batch_cv_.wait(lock, [&] { return t.applied.load(std::memory_order_relaxed); });
    return;
  }
  batch_combining_ = true;
  std::vector<Ticket*> batch;
  std::vector<std::span<const float>> grads;
  while (!batch_queue_.empty()) {
    batch.assign(batch_queue_.begin(), batch_queue_.end());
    batch_queue_.clear();
    lock.unlock();
    grads.clear();
    grads.reserve(batch.size());
    const float scale = batch.front()->scale;
    std::uint64_t drained = 0;  // one clock read shared by the whole batch
    for (const Ticket* q : batch) {
      FPS_CHECK(q->scale == scale) << "mixed scales in one combiner batch";
      grads.push_back(q->g);
      if (q->timing != nullptr) {
        if (drained == 0) drained = obs::now_ns();
        q->timing->drained_ns = drained;
      }
    }
    // One striped sweep applies every coalesced push, in arrival order per
    // element — bit-identical to applying them one by one.
    shard_.apply_batch(grads, scale);
    note_sweep(batch.size());
    lock.lock();
    for (Ticket* q : batch) q->applied.store(true, std::memory_order_relaxed);
    batch_cv_.notify_all();
  }
  batch_combining_ = false;
}

// --- lock-free ring handoff ------------------------------------------------

void PushCombiner::enqueue(Ticket* t) {
  if (!ring_.try_push(t)) {
    // Backpressure, not blocking: account the stall once, then keep offering.
    // Without a dedicated drainer the producer helps (takes the combiner role
    // when free) so a full ring always makes forward progress.
    ring_stalls_.fetch_add(1, std::memory_order_relaxed);
    if (stall_counter_ != nullptr) stall_counter_->add(1);
    do {
      if (num_threads_ == 0 && !combining_.exchange(true, std::memory_order_acquire)) {
        drain_ring();
        combining_.store(false, std::memory_order_release);
      } else {
        std::this_thread::yield();
      }
    } while (!ring_.try_push(t));
  }
  const std::size_t depth = ring_.size_approx();
  std::size_t prev = ring_depth_hw_.load(std::memory_order_relaxed);
  while (prev < depth &&
         !ring_depth_hw_.compare_exchange_weak(prev, depth, std::memory_order_relaxed)) {
  }
  if (num_threads_ >= 1) {
    posted_.fetch_add(1, std::memory_order_release);
    posted_.notify_one();
  }
}

void PushCombiner::apply_lockfree(Ticket& t) {
  enqueue(&t);
  // Combiner role handoff: whoever finds the role free drains the ring;
  // everyone else spins on their ticket. A role holder retires every ticket
  // it pops before releasing the role, so after any drain that covered our
  // enqueue the applied flag is visible here.
  for (;;) {
    if (t.applied.load(std::memory_order_acquire)) return;
    if (!combining_.exchange(true, std::memory_order_acquire)) {
      drain_ring();
      combining_.store(false, std::memory_order_release);
      if (t.applied.load(std::memory_order_acquire)) return;
    } else {
      std::this_thread::yield();
    }
  }
}

void PushCombiner::apply_via_drain_thread(Ticket& t) {
  enqueue(&t);
  // A dedicated drainer always exists, so parking on the ticket futex is
  // safe (no lost-combiner race to spin against).
  for (;;) {
    if (t.applied.load(std::memory_order_acquire)) return;
    t.applied.wait(false, std::memory_order_acquire);
  }
}

void PushCombiner::drain_ring() {
  // Single consumer by construction: either the combiner-role holder or the
  // dedicated drain thread, never both (num_threads_ selects the mode).
  for (;;) {
    drain_batch_.clear();
    Ticket* t = nullptr;
    while (ring_.try_pop(t)) drain_batch_.push_back(t);
    if (drain_batch_.empty()) return;
    sweep(drain_batch_);
  }
}

void PushCombiner::sweep(std::vector<Ticket*>& batch) {
  sweep_grads_.clear();
  sweep_grads_.reserve(batch.size());
  const float scale = batch.front()->scale;
  std::uint64_t drained = 0;  // one clock read shared by the whole batch
  for (const Ticket* t : batch) {
    FPS_CHECK(t->scale == scale) << "mixed scales in one combiner batch";
    sweep_grads_.push_back(t->g);
    if (t->timing != nullptr) {
      if (drained == 0) drained = obs::now_ns();
      t->timing->drained_ns = drained;
    }
  }
  if (num_threads_ >= 2) {
    // Fan the sweep out: helper t applies stripes i % T == t while we take
    // partition 0. The release increment of sweep_seq_ publishes
    // sweep_grads_/sweep_scale_; the acquire on sweep_pending_ joins the
    // helpers before the tickets are retired.
    sweep_scale_ = scale;
    sweep_pending_.store(num_threads_ - 1, std::memory_order_relaxed);
    sweep_seq_.fetch_add(1, std::memory_order_release);
    sweep_seq_.notify_all();
    shard_.apply_batch(sweep_grads_, scale, 0, num_threads_);
    for (std::uint32_t left; (left = sweep_pending_.load(std::memory_order_acquire)) != 0;) {
      sweep_pending_.wait(left, std::memory_order_acquire);
    }
  } else {
    shard_.apply_batch(sweep_grads_, scale);
  }
  note_sweep(batch.size());
  for (Ticket* t : batch) {
    t->applied.store(true, std::memory_order_release);
    if (num_threads_ >= 1) t->applied.notify_all();  // spinners don't park
  }
}

void PushCombiner::note_sweep(std::size_t batch_size) {
  sweeps_.fetch_add(1, std::memory_order_relaxed);
  if (batch_hist_ != nullptr) batch_hist_->record(batch_size);
  std::size_t prev = max_batch_.load(std::memory_order_relaxed);
  while (prev < batch_size &&
         !max_batch_.compare_exchange_weak(prev, batch_size, std::memory_order_relaxed)) {
  }
}

// --- apply-thread pool -----------------------------------------------------

void PushCombiner::pin_self(std::size_t part) {
  if (!pin_) return;
  if (affinity::pin_current_thread(pin_slot_base_ + static_cast<unsigned>(part))) {
    pinned_.fetch_add(1, std::memory_order_relaxed);
  }
}

void PushCombiner::drain_thread_main() {
  pin_self(0);
  if (!shard_.initialized()) shard_.first_touch(0, num_threads_);
  init_remaining_.fetch_sub(1, std::memory_order_release);
  std::uint64_t seen = posted_.load(std::memory_order_acquire);
  for (;;) {
    drain_ring();
    if (stop_.load(std::memory_order_acquire)) return;
    const std::uint64_t cur = posted_.load(std::memory_order_acquire);
    if (cur == seen) {
      posted_.wait(cur, std::memory_order_acquire);  // returns once posted_ moves
    } else {
      seen = cur;  // new posts arrived while sweeping: drain again
    }
  }
}

void PushCombiner::helper_thread_main(std::size_t part) {
  pin_self(part);
  if (!shard_.initialized()) shard_.first_touch(part, num_threads_);
  init_remaining_.fetch_sub(1, std::memory_order_release);
  std::uint64_t seen = 0;
  for (;;) {
    sweep_seq_.wait(seen, std::memory_order_acquire);
    const std::uint64_t cur = sweep_seq_.load(std::memory_order_acquire);
    if (stop_.load(std::memory_order_acquire)) return;
    if (cur == seen) continue;  // spurious wake
    seen = cur;
    shard_.apply_batch(sweep_grads_, sweep_scale_, part, num_threads_);
    if (sweep_pending_.fetch_sub(1, std::memory_order_release) == 1) {
      sweep_pending_.notify_all();
    }
  }
}

}  // namespace fluentps::ps
