// Key space shared by slicers, servers and workers.
//
// Following PS-Lite/MXNet practice, each model tensor ("layer") gets a key;
// EPS additionally splits large tensors into chunk keys. A slice maps a key
// to a contiguous range of the flat parameter vector.
#pragma once

#include <cstdint>

namespace fluentps::ps {

using Key = std::uint64_t;

/// One key's backing range in the flat parameter vector.
struct ParamSlice {
  Key key = 0;
  std::size_t offset = 0;  ///< start index in the flat parameter vector
  std::size_t length = 0;  ///< number of float parameters

  friend bool operator==(const ParamSlice&, const ParamSlice&) = default;
};

}  // namespace fluentps::ps
