#include "ps/scheduler.h"

#include "common/logging.h"

namespace fluentps::ps {

Scheduler::Scheduler(SchedulerSpec spec, net::Transport& transport)
    : node_id_(spec.node_id),
      num_workers_(spec.num_workers),
      worker_nodes_(std::move(spec.worker_nodes)),
      engine_(std::move(spec.engine)),
      transport_(transport),
      liveness_timeout_(spec.liveness_timeout) {
  FPS_CHECK(worker_nodes_.size() == num_workers_) << "worker node list size mismatch";
}

void Scheduler::handle(net::Message&& msg) {
  switch (msg.type) {
    case net::MsgType::kProgress: {
      const std::uint32_t w = msg.worker_rank;
      const std::int64_t p = msg.progress;
      // The report is simultaneously this worker's "push" into the global
      // progress view and its request to enter the pull phase.
      const auto released = engine_.on_push(w, p);
      for (const std::uint64_t id : released) grant(id);
      const std::uint64_t req = next_request_++;
      if (engine_.on_pull(w, p, req)) {
        pending_.emplace(req, w);
        grant(req);
      } else {
        pending_.emplace(req, w);
      }
      break;
    }
    case net::MsgType::kHeartbeat: {
      std::scoped_lock lock(liveness_mu_);
      last_heartbeat_[msg.src] = now_;
      break;
    }
    case net::MsgType::kShutdown:
      break;
    default:
      FPS_LOG(Warn) << "scheduler ignoring " << msg.to_debug_string();
  }
}

void Scheduler::grant(std::uint64_t request_id) {
  const auto it = pending_.find(request_id);
  FPS_CHECK(it != pending_.end()) << "grant for unknown request " << request_id;
  const std::uint32_t w = it->second;
  pending_.erase(it);
  FPS_CHECK(w < worker_nodes_.size()) << "grant for unknown worker " << w;
  net::Message msg;
  msg.type = net::MsgType::kPullGrant;
  msg.src = node_id_;
  msg.dst = worker_nodes_[w];
  msg.request_id = request_id;
  msg.worker_rank = w;
  ++grants_issued_;
  transport_.send(std::move(msg));
}

void Scheduler::tick(double now) {
  std::scoped_lock lock(liveness_mu_);
  now_ = now;
}

std::vector<net::NodeId> Scheduler::alive_servers() const {
  std::scoped_lock lock(liveness_mu_);
  std::vector<net::NodeId> alive;
  for (const auto& [node, t] : last_heartbeat_) {
    if (now_ - t <= liveness_timeout_) alive.push_back(node);
  }
  return alive;
}

}  // namespace fluentps::ps
