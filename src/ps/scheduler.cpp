#include "ps/scheduler.h"

#include "common/logging.h"

namespace fluentps::ps {

Scheduler::Scheduler(SchedulerSpec spec, net::Transport& transport)
    : node_id_(spec.node_id),
      num_workers_(spec.num_workers),
      worker_nodes_(std::move(spec.worker_nodes)),
      engine_(std::move(spec.engine)),
      transport_(transport),
      liveness_timeout_(spec.liveness_timeout),
      last_report_(spec.num_workers, -1),
      granted_up_to_(spec.num_workers, -1) {
  FPS_CHECK(worker_nodes_.size() == num_workers_) << "worker node list size mismatch";
}

void Scheduler::handle(net::Message&& msg) {
  switch (msg.type) {
    case net::MsgType::kProgress: {
      const std::uint32_t w = msg.worker_rank;
      const std::int64_t p = msg.progress;
      FPS_CHECK(w < num_workers_) << "progress report from unknown worker " << w;
      if (p <= last_report_[w]) {
        // Retransmitted report (lossy fabric): the engine already counted
        // it. If the grant was issued, the grant itself was probably lost —
        // re-send it; otherwise the original request is still queued and
        // will be granted when released.
        ++dedup_hits_;
        if (p <= granted_up_to_[w]) send_grant(w, p, /*request_id=*/0);
        break;
      }
      last_report_[w] = p;
      // The report is simultaneously this worker's "push" into the global
      // progress view and its request to enter the pull phase.
      const auto released = engine_.on_push(w, p);
      for (const std::uint64_t id : released) grant(id);
      const std::uint64_t req = next_request_++;
      if (engine_.on_pull(w, p, req)) {
        pending_.emplace(req, PendingGrant{w, p});
        grant(req);
      } else {
        pending_.emplace(req, PendingGrant{w, p});
      }
      break;
    }
    case net::MsgType::kHeartbeat: {
      std::scoped_lock lock(liveness_mu_);
      last_heartbeat_[msg.src] = now_;
      break;
    }
    case net::MsgType::kShutdown:
      break;
    default:
      FPS_LOG(Warn) << "scheduler ignoring " << msg.to_debug_string();
  }
}

void Scheduler::grant(std::uint64_t request_id) {
  const auto it = pending_.find(request_id);
  FPS_CHECK(it != pending_.end()) << "grant for unknown request " << request_id;
  const PendingGrant pg = it->second;
  pending_.erase(it);
  granted_up_to_[pg.worker] = std::max(granted_up_to_[pg.worker], pg.progress);
  send_grant(pg.worker, pg.progress, request_id);
}

void Scheduler::send_grant(std::uint32_t worker, std::int64_t progress,
                           std::uint64_t request_id) {
  FPS_CHECK(worker < worker_nodes_.size()) << "grant for unknown worker " << worker;
  net::Message msg;
  msg.type = net::MsgType::kPullGrant;
  msg.src = node_id_;
  msg.dst = worker_nodes_[worker];
  msg.request_id = request_id;
  msg.progress = progress;
  msg.worker_rank = worker;
  ++grants_issued_;
  transport_.send(std::move(msg));
}

void Scheduler::tick(double now) {
  std::scoped_lock lock(liveness_mu_);
  now_ = now;
}

std::vector<net::NodeId> Scheduler::alive_servers() const {
  std::scoped_lock lock(liveness_mu_);
  std::vector<net::NodeId> alive;
  for (const auto& [node, t] : last_heartbeat_) {
    if (now_ - t <= liveness_timeout_) alive.push_back(node);
  }
  return alive;
}

}  // namespace fluentps::ps
