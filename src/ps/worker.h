// Worker-side client for the thread backend: the paper's sPush / sPull /
// wait API (Algorithm 1, worker side). Each call both synchronizes a
// parameter slice and reports the worker's progress.
//
// Threading model: the worker's training thread calls push()/pull()/wait_*();
// the transport dispatch thread calls handle() with responses. State shared
// between the two is guarded by one mutex + condition variable (CP.42: every
// wait has a predicate).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "net/message.h"
#include "net/transport.h"
#include "ps/slicing.h"

namespace fluentps::ps {

struct WorkerSpec {
  net::NodeId node_id = 0;
  std::uint32_t worker_rank = 0;
  std::vector<net::NodeId> server_nodes;  ///< node id of server rank m at [m]
  const Sharding* sharding = nullptr;     ///< owned by the runtime; must outlive
  net::NodeId scheduler_node = 0;         ///< used only by the baseline protocol
};

class WorkerClient {
 public:
  WorkerClient(WorkerSpec spec, net::Transport& transport);

  WorkerClient(const WorkerClient&) = delete;
  WorkerClient& operator=(const WorkerClient&) = delete;

  /// Transport handler; register with transport.register_node(node_id, ...).
  void handle(net::Message&& msg);

  /// sPush: slice `update` per the sharding and send one push per server,
  /// tagged with this worker's progress (the iteration just computed).
  void push(std::span<const float> update, std::int64_t progress);

  /// Metadata-only sPush: report progress without values (the significance
  /// filter suppressed this iteration's update; servers count the progress
  /// but apply nothing).
  void push_metadata(std::int64_t progress);

  /// sPull: request every shard for iteration progress+1; returns a ticket.
  std::uint64_t pull(std::int64_t progress);

  /// wait (Algorithm 1 line 5): block until all shards for `ticket` arrived,
  /// scattering them into `params` (the full flat vector).
  void wait_pull(std::uint64_t ticket, std::span<float> params);

  /// Baseline protocol: block until all servers acked the last push().
  void wait_push_acks();

  /// Baseline protocol: report progress to the scheduler and block until it
  /// grants the pull phase.
  void report_and_wait_grant(std::int64_t progress);

  /// Seconds this worker spent blocked inside wait_* calls so far.
  [[nodiscard]] double blocked_seconds() const;

  [[nodiscard]] std::uint32_t rank() const noexcept { return worker_rank_; }
  [[nodiscard]] net::NodeId node_id() const noexcept { return node_id_; }

 private:
  net::NodeId node_id_;
  std::uint32_t worker_rank_;
  std::vector<net::NodeId> server_nodes_;
  const Sharding* sharding_;
  net::NodeId scheduler_node_;
  net::Transport& transport_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  // One outstanding pull at a time (the training loop is sequential).
  std::uint64_t current_ticket_ = 0;
  std::vector<std::vector<float>> shard_values_;  // per server rank
  std::uint32_t shards_received_ = 0;
  std::uint32_t acks_received_ = 0;
  std::uint32_t acks_expected_ = 0;
  bool grant_received_ = false;
  // Tickets embed the worker rank in the high bits so request ids are unique
  // across the whole cluster (servers key pending pulls by id alone).
  std::uint64_t next_ticket_;
  double blocked_seconds_ = 0.0;
};

}  // namespace fluentps::ps
