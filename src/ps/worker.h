// Worker-side client for the thread backend: the paper's sPush / sPull /
// wait API (Algorithm 1, worker side). Each call both synchronizes a
// parameter slice and reports the worker's progress.
//
// Reliability (fault subsystem): with WorkerSpec::reliable every push carries
// a per-(worker, server) sequence number, and each wait_* call becomes a
// timed loop driven by a RetryPolicy — on timeout the worker retransmits
// whatever is still outstanding (unacked pushes, unanswered pull shards, an
// ungranted progress report) with exponential backoff + jitter. Combined with
// the server/scheduler dedup windows this yields at-least-once delivery with
// exactly-once application over a lossy transport. The worker also answers
// the kRecover handshake after a server crash-restart by reporting the last
// push that server acked.
//
// Threading model: the worker's training thread calls push()/pull()/wait_*();
// the transport dispatch thread calls handle() with responses. State shared
// between the two is guarded by one mutex + condition variable (CP.42: every
// wait has a predicate).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "common/rng.h"
#include "fault/retry_policy.h"
#include "net/message.h"
#include "net/transport.h"
#include "obs/telemetry.h"
#include "ps/read_options.h"
#include "ps/slicing.h"

namespace fluentps::ps {

struct WorkerSpec {
  net::NodeId node_id = 0;
  std::uint32_t worker_rank = 0;
  std::vector<net::NodeId> server_nodes;  ///< node id of server rank m at [m]
  const Sharding* sharding = nullptr;     ///< owned by the runtime; must outlive
  net::NodeId scheduler_node = 0;         ///< used only by the baseline protocol
  bool reliable = false;                  ///< sequence numbers + retransmit loops
  fault::RetryPolicy retry;               ///< timeout/backoff knobs (reliable mode)
  std::uint64_t seed = 1;                 ///< jitter stream seed (reliable mode)
  obs::Telemetry* telemetry = nullptr;    ///< span tracing (DESIGN.md §12)
  /// Bounded-read offloading (DESIGN.md §13): for each server rank m, the
  /// non-head chain members of shard m's replication chain, in chain order.
  /// Empty (or empty per rank) = bounded pulls go to the head like strong
  /// ones. Only consulted when ReadOptions::consistency == kBounded.
  std::vector<std::vector<net::NodeId>> read_replicas;
};

class WorkerClient {
 public:
  WorkerClient(WorkerSpec spec, net::Transport& transport);

  WorkerClient(const WorkerClient&) = delete;
  WorkerClient& operator=(const WorkerClient&) = delete;

  /// Transport handler; register with transport.register_node(node_id, ...).
  void handle(net::Message&& msg);

  /// sPush: slice `update` per the sharding and send one push per server,
  /// tagged with this worker's progress (the iteration just computed). In
  /// reliable mode this first blocks until the previous push round is fully
  /// acked (one outstanding round keeps the retransmit state simple).
  void push(std::span<const float> update, std::int64_t progress);

  /// Metadata-only sPush: report progress without values (the significance
  /// filter suppressed this iteration's update; servers count the progress
  /// but apply nothing).
  void push_metadata(std::int64_t progress);

  /// sPull — the unified read entry point (DESIGN.md §13). Requests every
  /// shard whose slices intersect `range` (KeyRange::all() = the whole
  /// model; range granularity is server selection — responses carry whole
  /// shards) and returns a ticket for wait_pull.
  ///
  /// kStrong (default): the legacy engine-gated pull — frames are
  /// byte-identical to the old pull(progress) overload with
  /// opts.clock = progress. kBounded: the read may be served by any chain
  /// node whose applied horizon trails opts.clock by at most
  /// opts.max_staleness_clocks; with opts.prefer_replica the worker
  /// round-robins across {head} ∪ read_replicas[m], and a kPullRedirect
  /// (bound unsatisfiable at the replica) re-targets that shard to the head
  /// under the same ticket.
  std::uint64_t pull(KeyRange range, const ReadOptions& opts);

  /// Deprecated shim for the pre-ReadOptions API; byte-identical to
  /// pull(KeyRange::all(), ReadOptions{.clock = progress}).
  [[deprecated("use pull(KeyRange, ReadOptions)")]] std::uint64_t pull(std::int64_t progress) {
    ReadOptions opts;
    opts.clock = progress;
    return pull(KeyRange::all(), opts);
  }

  /// wait (Algorithm 1 line 5): block until all shards for `ticket` arrived,
  /// scattering them into `params` (the full flat vector). Reliable mode
  /// retransmits missing pulls (same ticket) and unacked pushes on timeout.
  void wait_pull(std::uint64_t ticket, std::span<float> params);

  /// Baseline protocol: block until all servers acked the last push().
  void wait_push_acks();

  /// Baseline protocol: report progress to the scheduler and block until it
  /// grants the pull phase. Reliable mode retransmits the report on timeout.
  void report_and_wait_grant(std::int64_t progress);

  /// Seconds this worker spent blocked inside wait_* calls so far.
  [[nodiscard]] double blocked_seconds() const;

  /// Retransmission rounds triggered by timeouts (reliable mode).
  [[nodiscard]] std::int64_t retries() const;

  // --- bounded-read observability (DESIGN.md §13) ---------------------
  /// Bounded-pull shards answered by a replica / by the head.
  [[nodiscard]] std::int64_t replica_reads() const;
  [[nodiscard]] std::int64_t head_reads() const;
  /// kPullRedirect fallbacks (replica horizon behind the bound).
  [[nodiscard]] std::int64_t read_redirects() const;
  /// Replica-served responses whose echoed horizon violated the requested
  /// bound — the staleness oracle; must stay 0 (head-served responses are
  /// strong by definition and exempt).
  [[nodiscard]] std::int64_t read_violations() const;
  /// Highest serving horizon observed in any bounded response — a read-only
  /// client's natural clock for its next ReadOptions.
  [[nodiscard]] std::int64_t observed_horizon() const;

  [[nodiscard]] std::uint32_t rank() const noexcept { return worker_rank_; }
  [[nodiscard]] net::NodeId node_id() const noexcept { return node_id_; }

 private:
  /// Requires mu_ held. (Re)send the round's push for server m.
  void send_push_locked(std::size_t m);
  /// Requires mu_ held. (Re)send the pull for server m with the live ticket.
  void send_pull_locked(std::size_t m);
  /// Requires mu_ held. Count of servers with a non-empty shard layout —
  /// inactive elastic slots own no slices and are skipped by pushes/pulls.
  [[nodiscard]] std::uint32_t active_servers_locked() const;
  void send_progress_report(std::int64_t progress);
  /// Reliable mode: block until the outstanding push round is fully acked,
  /// retransmitting unacked shards per the retry policy.
  void await_round_acked();

  net::NodeId node_id_;
  std::uint32_t worker_rank_;
  std::vector<net::NodeId> server_nodes_;
  const Sharding* sharding_;
  net::NodeId scheduler_node_;
  bool reliable_;
  fault::RetryPolicy retry_;
  net::Transport& transport_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  Rng retry_rng_;

  // --- outstanding push round (one at a time; training loop is sequential)
  std::int64_t round_progress_ = -1;
  bool round_metadata_ = false;
  std::vector<float> round_update_;        // flat copy kept for retransmits
  // Per-server gather staging for the zero-copy send path: when the transport
  // delivers inline (TCP), push messages *borrow* these buffers instead of
  // owning a copy. Stable for the duration of send() because mu_ is held and
  // retransmits re-gather before each send.
  std::vector<std::vector<float>> push_staging_;
  std::vector<std::uint64_t> round_seqs_;  // per server
  std::vector<char> round_acked_;          // per server
  std::uint32_t round_unacked_ = 0;

  // Cross-hop tracing (DESIGN.md §12): one root "worker.push" span per
  // (round, server), assigned when the round first sends — retransmits reuse
  // the same ids so the whole retry ladder folds into one trace. Closed when
  // the live round's ack arrives. All zero when tracing is off.
  obs::Telemetry* telemetry_ = nullptr;
  std::vector<std::uint64_t> round_trace_;  // per server (0 = untraced)
  std::vector<std::uint32_t> round_span_;   // per server
  std::vector<std::uint64_t> round_t0_;     // per server, send stamp (abs ns)

  std::vector<std::uint64_t> next_seq_;            // per server, starts at 1
  std::vector<std::int64_t> last_acked_progress_;  // per server, -1 = none

  // --- outstanding pull
  std::uint64_t current_ticket_ = 0;
  std::int64_t pull_progress_ = 0;                // ReadOptions::clock
  std::vector<std::vector<float>> shard_values_;  // per server rank
  std::vector<char> pull_received_;               // per server rank
  std::uint32_t shards_received_ = 0;

  // Bounded-read routing state (DESIGN.md §13). pull_dst_[m] is where shard
  // m's in-flight request currently points: the round-robin pick at pull()
  // time, re-targeted to the head by kPullRedirect, retry timeouts and
  // kPromote (replica routing is an optimization; the head is the fallback
  // for every slow path).
  std::vector<std::vector<net::NodeId>> read_replicas_;  // per server rank
  std::vector<net::NodeId> pull_dst_;                    // per server rank
  std::vector<char> pull_wanted_;   // per server rank: shard in the KeyRange
  std::uint32_t pull_expected_ = 0; // wanted shard count for this ticket
  std::uint64_t pull_seq_ = 0;      // encoded staleness bound (0 = strong)
  bool pull_bounded_ = false;
  std::int64_t pull_bound_ = 0;     // max_staleness_clocks of the live pull
  double pull_timeout_ = 0.0;       // per-request first-attempt override
  std::size_t read_rr_ = 0;         // round-robin cursor over {head} ∪ replicas
  std::int64_t replica_reads_ = 0;
  std::int64_t head_reads_ = 0;
  std::int64_t read_redirects_ = 0;
  std::int64_t read_violations_ = 0;
  std::int64_t observed_horizon_ = -1;

  // --- baseline protocol state
  std::uint32_t acks_received_ = 0;
  std::uint32_t acks_expected_ = 0;
  bool grant_received_ = false;
  std::int64_t awaited_grant_progress_ = -1;

  // Tickets embed the worker rank in the high bits so request ids are unique
  // across the whole cluster (servers key pending pulls by id alone).
  std::uint64_t next_ticket_;
  double blocked_seconds_ = 0.0;
  std::int64_t retries_ = 0;
  bool budget_warned_ = false;
};

}  // namespace fluentps::ps
