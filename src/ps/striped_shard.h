// Striped parameter-shard storage: the server's value buffer partitioned into
// S contiguous stripes, each guarded by its own mutex, replacing the old
// whole-shard `shard_mu_`.
//
// Stripe boundaries align to slice boundaries when slice lengths are given
// (stripes are "keyed by slice id": every ParamSlice lives entirely inside
// one stripe), so readers and writers of disjoint slice groups never contend.
//
// Consistency contract (DESIGN.md §8): writes are applied stripe-by-stripe,
// so a concurrent reader (pull response, snapshot) observes each *stripe*
// atomically but may see a state where stripe k already includes a push that
// stripe k+1 does not — slice-atomic, not push-atomic, matching PS-Lite's
// per-key consistency. Checkpointing uses with_exclusive(), which holds every
// stripe and is therefore push-atomic.
//
// Bit-identity: apply_batch() sweeps stripe-outer / entry-inner, applying the
// batch's gradients to each element in entry order — every element receives
// exactly the same sequence of fused multiply-free `w += scale * g` additions
// as a sequential per-message loop, so batched results are bit-identical to
// unbatched ones. This holds for partitioned sweeps too (apply_batch with
// part/parts): the partition only decides *which thread* touches a stripe,
// never the per-element order.
//
// NUMA placement (DESIGN.md §11): storage is a 64-byte-aligned raw buffer,
// and with `defer_first_touch` the constructor leaves the pages untouched so
// each apply thread can first_touch() its own stripe partition — on a
// multi-node machine the kernel then backs every stripe with memory local to
// the thread that will sweep it. On single-node machines this costs nothing.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

namespace fluentps::ps {

class StripedShard {
 public:
  /// `slice_lengths` (optional) aligns stripe boundaries to slice boundaries;
  /// when empty the buffer is split into near-equal element ranges. The
  /// effective stripe count is min(num_stripes, max(1, #slices or size)).
  ///
  /// With `defer_first_touch` the values are parked and the data pages stay
  /// untouched until first_touch() copies them in, partition by partition;
  /// the owner must complete every partition before any read or apply.
  StripedShard(std::vector<float> values, std::uint32_t num_stripes,
               const std::vector<std::size_t>& slice_lengths = {},
               bool defer_first_touch = false);

  StripedShard(const StripedShard&) = delete;
  StripedShard& operator=(const StripedShard&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::uint32_t num_stripes() const noexcept {
    return static_cast<std::uint32_t>(stripes_.size());
  }

  /// First-touch-initialize the stripes of partition `part` (stripe i belongs
  /// to partition i % parts) by copying the parked initial values — call from
  /// the thread that will later sweep that partition, pinned to its core.
  /// Each partition must be touched exactly once; the parked values are freed
  /// when the last partition completes. No-op ranges are fine (empty stripes).
  void first_touch(std::size_t part, std::size_t parts);

  /// True once every partition was first-touched (always true without
  /// defer_first_touch).
  [[nodiscard]] bool initialized() const noexcept {
    return untouched_.load(std::memory_order_acquire) == 0;
  }

  /// Fence-time relayout (elastic migration, DESIGN.md §14): replace the
  /// values and recompute stripe boundaries for the new slice lengths. The
  /// stripe count is re-derived from the construction-time request, so a
  /// spare slot that started with an empty shard gets full striping once it
  /// owns slices. Callers must guarantee quiescence — no concurrent apply,
  /// copy_out or with_exclusive (every worker is parked at the epoch fence);
  /// deferred first-touch must have completed. The new pages are touched
  /// here, on the calling thread (the NUMA first-touch nicety is forfeited
  /// for migrated-in values; correctness is unaffected).
  void reconfigure(std::vector<float> values,
                   const std::vector<std::size_t>& slice_lengths);

  /// Apply `grads` (each of size()) in order: w += scale * g for each g, one
  /// striped sweep. Entry order is preserved per element (see bit-identity
  /// note above). Every gradient span must stay valid for the call.
  ///
  /// `part`/`parts` restrict the sweep to the stripes of one partition
  /// (stripe i % parts == part) so parallel apply threads can split a batch
  /// without sharing stripes; the default sweeps everything.
  void apply_batch(std::span<const std::span<const float>> grads, float scale,
                   std::size_t part = 0, std::size_t parts = 1);

  /// Exclusive single-push apply that also computes the paper's gradient
  /// significance SF(g, w) = |g| / |w| against the *pre-apply* values —
  /// the exact legacy path, used when the sync model consumes significance.
  double apply_exclusive_with_significance(std::span<const float> g, float scale);

  /// Copy the current values into `out` (size()) under per-stripe locks.
  /// Slice-atomic, not push-atomic (see consistency contract).
  void copy_out(std::span<float> out) const;

  [[nodiscard]] std::vector<float> snapshot() const;

  /// Run `f(std::span<float>)` with every stripe locked (push-atomic view);
  /// for checkpointing and tests.
  template <typename F>
  void with_exclusive(F&& f) {
    lock_all();
    f(std::span<float>(data_.get(), size_));
    unlock_all();
  }
  template <typename F>
  void with_exclusive(F&& f) const {
    lock_all();
    f(std::span<const float>(data_.get(), size_));
    unlock_all();
  }

 private:
  void lock_all() const;
  void unlock_all() const;

  struct Stripe {
    mutable std::mutex mu;
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  struct FreeDeleter {
    void operator()(float* p) const noexcept { std::free(p); }
  };

  /// Recompute stripe boundaries over [0, n) for the current stripe count;
  /// trailing stripes beyond the slice count degenerate to empty.
  void layout_stripes(std::size_t n, const std::vector<std::size_t>& slice_lengths);

  std::unique_ptr<float[], FreeDeleter> data_;  ///< 64-byte aligned
  std::size_t size_ = 0;
  std::uint32_t requested_stripes_ = 1;  ///< construction-time stripe request
  std::vector<Stripe> stripes_;

  // Deferred first-touch bookkeeping: parked initial values plus the count of
  // stripes not yet touched. The last first_touch() caller frees the parked
  // copy (acq_rel on the counter orders its reads before the free).
  std::vector<float> init_;
  std::atomic<std::size_t> untouched_{0};
};

}  // namespace fluentps::ps
