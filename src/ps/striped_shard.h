// Striped parameter-shard storage: the server's value buffer partitioned into
// S contiguous stripes, each guarded by its own mutex, replacing the old
// whole-shard `shard_mu_`.
//
// Stripe boundaries align to slice boundaries when slice lengths are given
// (stripes are "keyed by slice id": every ParamSlice lives entirely inside
// one stripe), so readers and writers of disjoint slice groups never contend.
//
// Consistency contract (DESIGN.md §8): writes are applied stripe-by-stripe,
// so a concurrent reader (pull response, snapshot) observes each *stripe*
// atomically but may see a state where stripe k already includes a push that
// stripe k+1 does not — slice-atomic, not push-atomic, matching PS-Lite's
// per-key consistency. Checkpointing uses with_exclusive(), which holds every
// stripe and is therefore push-atomic.
//
// Bit-identity: apply_batch() sweeps stripe-outer / entry-inner, applying the
// batch's gradients to each element in entry order — every element receives
// exactly the same sequence of fused multiply-free `w += scale * g` additions
// as a sequential per-message loop, so batched results are bit-identical to
// unbatched ones.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

namespace fluentps::ps {

class StripedShard {
 public:
  /// `slice_lengths` (optional) aligns stripe boundaries to slice boundaries;
  /// when empty the buffer is split into near-equal element ranges. The
  /// effective stripe count is min(num_stripes, max(1, #slices or size)).
  StripedShard(std::vector<float> values, std::uint32_t num_stripes,
               const std::vector<std::size_t>& slice_lengths = {});

  StripedShard(const StripedShard&) = delete;
  StripedShard& operator=(const StripedShard&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] std::uint32_t num_stripes() const noexcept {
    return static_cast<std::uint32_t>(stripes_.size());
  }

  /// Apply `grads` (each of size()) in order: w += scale * g for each g, one
  /// striped sweep. Entry order is preserved per element (see bit-identity
  /// note above). Every gradient span must stay valid for the call.
  void apply_batch(std::span<const std::span<const float>> grads, float scale);

  /// Exclusive single-push apply that also computes the paper's gradient
  /// significance SF(g, w) = |g| / |w| against the *pre-apply* values —
  /// the exact legacy path, used when the sync model consumes significance.
  double apply_exclusive_with_significance(std::span<const float> g, float scale);

  /// Copy the current values into `out` (size()) under per-stripe locks.
  /// Slice-atomic, not push-atomic (see consistency contract).
  void copy_out(std::span<float> out) const;

  [[nodiscard]] std::vector<float> snapshot() const;

  /// Run `f(std::span<float>)` with every stripe locked (push-atomic view);
  /// for checkpointing and tests.
  template <typename F>
  void with_exclusive(F&& f) {
    lock_all();
    f(std::span<float>(data_.data(), data_.size()));
    unlock_all();
  }
  template <typename F>
  void with_exclusive(F&& f) const {
    lock_all();
    f(std::span<const float>(data_.data(), data_.size()));
    unlock_all();
  }

 private:
  void lock_all() const;
  void unlock_all() const;

  struct Stripe {
    mutable std::mutex mu;
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  std::vector<float> data_;
  std::vector<Stripe> stripes_;
};

}  // namespace fluentps::ps
