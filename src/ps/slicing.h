// Parameter slicing: how the flat parameter vector maps onto servers.
//
// DefaultSlicer reproduces PS-Lite/MXNet behaviour: one key per layer, the
// key space divided into M contiguous ranges by key count. Because a large
// tensor is a single indivisible key, the server owning it becomes a traffic
// hot spot ("the default slicing method incurs load imbalance because it puts
// most parameters on one key range of a server", Section III-A).
//
// EpsSlicer implements Elastic Parameter Slicing: large layers are split into
// chunk keys and chunks are placed with longest-processing-time (LPT) greedy
// assignment, balancing bytes per server. rebalance() recomputes placement
// for a changed server count while preserving chunking, and reports which
// slices move (the migration plan).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ps/keys.h"

namespace fluentps::ps {

/// One server's portion of the model: ordered slices; messages between a
/// worker and this server carry the concatenation of these slices' values in
/// this exact order.
struct ShardLayout {
  std::uint32_t server_rank = 0;
  std::vector<ParamSlice> slices;
  std::size_t total = 0;  ///< sum of slice lengths

  /// Gather this shard's values from the flat vector into `out` (size total).
  void gather(std::span<const float> flat, std::span<float> out) const;

  /// Scatter `in` (size total) back into the flat vector.
  void scatter(std::span<const float> in, std::span<float> flat) const;

  /// Accumulate: flat[slice] += scale * in[...] for each slice.
  void accumulate(std::span<const float> in, float scale, std::span<float> flat) const;
};

/// Full model placement across M servers.
struct Sharding {
  std::vector<ShardLayout> shards;
  std::size_t num_params = 0;

  [[nodiscard]] std::size_t num_servers() const noexcept { return shards.size(); }

  /// Largest shard size / mean shard size; 1.0 is perfectly balanced.
  [[nodiscard]] double imbalance() const noexcept;

  /// Sanity: slices cover [0, num_params) exactly once. Aborts otherwise.
  void validate() const;
};

class Slicer {
 public:
  virtual ~Slicer() = default;

  /// Compute placement of a model with the given per-layer sizes onto
  /// `num_servers` servers.
  [[nodiscard]] virtual Sharding shard(const std::vector<std::size_t>& layer_sizes,
                                       std::uint32_t num_servers) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// PS-Lite default: layer-granular keys, contiguous key ranges per server.
class DefaultSlicer final : public Slicer {
 public:
  [[nodiscard]] Sharding shard(const std::vector<std::size_t>& layer_sizes,
                               std::uint32_t num_servers) const override;
  [[nodiscard]] std::string name() const override { return "default"; }
};

/// Elastic Parameter Slicing (Section III-A).
class EpsSlicer final : public Slicer {
 public:
  /// `chunk` is the maximum parameters per slice; large layers are split.
  explicit EpsSlicer(std::size_t chunk = 1024) noexcept : chunk_(chunk) {}

  [[nodiscard]] Sharding shard(const std::vector<std::size_t>& layer_sizes,
                               std::uint32_t num_servers) const override;
  [[nodiscard]] std::string name() const override { return "eps"; }

  /// A slice that must move between servers during rebalancing.
  struct Migration {
    ParamSlice slice;
    std::uint32_t from_server;
    std::uint32_t to_server;
  };

  /// Re-place an existing sharding onto a new server count (server join or
  /// leave). Chunk boundaries are preserved; returns the new sharding and
  /// appends the required movements to `plan` (if non-null).
  [[nodiscard]] Sharding rebalance(const Sharding& old, std::uint32_t new_num_servers,
                                   std::vector<Migration>* plan) const;

  [[nodiscard]] std::size_t chunk() const noexcept { return chunk_; }

 private:
  /// LPT assignment of slices onto servers; slices sorted by length desc.
  static Sharding assign(std::vector<ParamSlice> slices, std::uint32_t num_servers,
                         std::size_t num_params);

  std::size_t chunk_;
};

/// Factory for ExperimentConfig ("default" | "eps").
std::unique_ptr<Slicer> make_slicer(const std::string& kind, std::size_t eps_chunk = 1024);

}  // namespace fluentps::ps
