#include "ps/slicing.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "ml/ops.h"

namespace fluentps::ps {

void ShardLayout::gather(std::span<const float> flat, std::span<float> out) const {
  // Vectorized the same way the apply path was (ml::axpy): one bounds check
  // per slice, then an unrolled restrict copy kernel per slice (ml::copy).
  FPS_CHECK(out.size() >= total) << "gather buffer too small";
  std::size_t pos = 0;
  for (const auto& s : slices) {
    FPS_CHECK(s.offset + s.length <= flat.size()) << "slice exceeds parameter vector";
    ml::copy(flat.subspan(s.offset, s.length), out.subspan(pos, s.length));
    pos += s.length;
  }
}

void ShardLayout::scatter(std::span<const float> in, std::span<float> flat) const {
  FPS_CHECK(in.size() >= total) << "scatter buffer too small";
  std::size_t pos = 0;
  for (const auto& s : slices) {
    FPS_CHECK(s.offset + s.length <= flat.size()) << "slice exceeds parameter vector";
    ml::copy(in.subspan(pos, s.length), flat.subspan(s.offset, s.length));
    pos += s.length;
  }
}

void ShardLayout::accumulate(std::span<const float> in, float scale, std::span<float> flat) const {
  FPS_CHECK(in.size() >= total) << "accumulate buffer too small";
  std::size_t pos = 0;
  for (const auto& s : slices) {
    FPS_CHECK(s.offset + s.length <= flat.size()) << "slice exceeds parameter vector";
    // Per-slice axpy: identical arithmetic to the old scalar loop (one
    // `dst += scale * src` per element), just unrolled.
    ml::axpy(scale, in.subspan(pos, s.length), flat.subspan(s.offset, s.length));
    pos += s.length;
  }
}

double Sharding::imbalance() const noexcept {
  if (shards.empty() || num_params == 0) return 1.0;
  std::size_t max_total = 0;
  for (const auto& sh : shards) max_total = std::max(max_total, sh.total);
  const double mean =
      static_cast<double>(num_params) / static_cast<double>(shards.size());
  return mean > 0.0 ? static_cast<double>(max_total) / mean : 1.0;
}

void Sharding::validate() const {
  std::vector<std::pair<std::size_t, std::size_t>> ranges;  // (offset, length)
  for (const auto& sh : shards) {
    std::size_t sum = 0;
    for (const auto& s : sh.slices) {
      ranges.emplace_back(s.offset, s.length);
      sum += s.length;
    }
    FPS_CHECK(sum == sh.total) << "shard total mismatch on server " << sh.server_rank;
  }
  std::sort(ranges.begin(), ranges.end());
  std::size_t cursor = 0;
  for (const auto& [off, len] : ranges) {
    FPS_CHECK(off == cursor) << "slices leave a gap or overlap at offset " << off
                             << " (expected " << cursor << ")";
    cursor = off + len;
  }
  FPS_CHECK(cursor == num_params) << "slices cover " << cursor << " of " << num_params
                                  << " parameters";
}

namespace {

/// Layer-granular slices: key = layer index, contiguous offsets.
std::vector<ParamSlice> layer_slices(const std::vector<std::size_t>& layer_sizes) {
  std::vector<ParamSlice> slices;
  slices.reserve(layer_sizes.size());
  std::size_t off = 0;
  for (std::size_t i = 0; i < layer_sizes.size(); ++i) {
    slices.push_back(ParamSlice{static_cast<Key>(i), off, layer_sizes[i]});
    off += layer_sizes[i];
  }
  return slices;
}

void sort_slices_by_offset(ShardLayout& sh) {
  std::sort(sh.slices.begin(), sh.slices.end(),
            [](const ParamSlice& a, const ParamSlice& b) { return a.offset < b.offset; });
}

}  // namespace

Sharding DefaultSlicer::shard(const std::vector<std::size_t>& layer_sizes,
                              std::uint32_t num_servers) const {
  FPS_CHECK(num_servers > 0) << "need at least one server";
  const auto slices = layer_slices(layer_sizes);
  const std::size_t num_keys = slices.size();
  Sharding out;
  out.num_params = std::accumulate(layer_sizes.begin(), layer_sizes.end(), std::size_t{0});
  out.shards.resize(num_servers);
  for (std::uint32_t m = 0; m < num_servers; ++m) {
    out.shards[m].server_rank = m;
    // Contiguous key range [m*K/M, (m+1)*K/M) — PS-Lite's even key-space cut,
    // which is byte-imbalanced whenever layer sizes differ.
    const std::size_t begin = num_keys * m / num_servers;
    const std::size_t end = num_keys * (m + 1) / num_servers;
    for (std::size_t k = begin; k < end; ++k) {
      out.shards[m].slices.push_back(slices[k]);
      out.shards[m].total += slices[k].length;
    }
  }
  out.validate();
  return out;
}

Sharding EpsSlicer::assign(std::vector<ParamSlice> slices, std::uint32_t num_servers,
                           std::size_t num_params) {
  // LPT greedy: biggest slice to the currently least-loaded server. Ties are
  // broken by key then by server rank, so placement is deterministic.
  std::sort(slices.begin(), slices.end(), [](const ParamSlice& a, const ParamSlice& b) {
    if (a.length != b.length) return a.length > b.length;
    return a.key < b.key;
  });
  Sharding out;
  out.num_params = num_params;
  out.shards.resize(num_servers);
  for (std::uint32_t m = 0; m < num_servers; ++m) out.shards[m].server_rank = m;
  for (const auto& s : slices) {
    std::uint32_t best = 0;
    for (std::uint32_t m = 1; m < num_servers; ++m) {
      if (out.shards[m].total < out.shards[best].total) best = m;
    }
    out.shards[best].slices.push_back(s);
    out.shards[best].total += s.length;
  }
  for (auto& sh : out.shards) sort_slices_by_offset(sh);
  out.validate();
  return out;
}

Sharding EpsSlicer::shard(const std::vector<std::size_t>& layer_sizes,
                          std::uint32_t num_servers) const {
  FPS_CHECK(num_servers > 0) << "need at least one server";
  FPS_CHECK(chunk_ > 0) << "chunk size must be positive";
  // Remap original layer keys to chunk keys: each layer is cut into pieces of
  // at most `chunk_` parameters ("EPS remaps the original keys of the
  // parameters to new keys, which divide the model parameters evenly").
  std::vector<ParamSlice> slices;
  Key next_key = 0;
  std::size_t off = 0;
  for (const std::size_t layer : layer_sizes) {
    std::size_t remaining = layer;
    while (remaining > 0) {
      const std::size_t piece = std::min(remaining, chunk_);
      slices.push_back(ParamSlice{next_key++, off, piece});
      off += piece;
      remaining -= piece;
    }
  }
  return assign(std::move(slices), num_servers, off);
}

Sharding EpsSlicer::rebalance(const Sharding& old, std::uint32_t new_num_servers,
                              std::vector<Migration>* plan) const {
  FPS_CHECK(new_num_servers > 0) << "need at least one server";
  // Movement-aware rebalance: surviving servers keep slices up to the new
  // per-server target; only the excess (plus everything owned by departed
  // servers) enters the migration pool, which is LPT-placed onto the
  // least-loaded servers. Growing M -> M+1 therefore moves ~1/(M+1) of the
  // bytes instead of reshuffling the whole model.
  const double target = static_cast<double>(old.num_params) / new_num_servers;

  Sharding fresh;
  fresh.num_params = old.num_params;
  fresh.shards.resize(new_num_servers);
  for (std::uint32_t m = 0; m < new_num_servers; ++m) fresh.shards[m].server_rank = m;

  struct PoolEntry {
    ParamSlice slice;
    std::uint32_t from;
  };
  std::vector<PoolEntry> pool;
  for (const auto& sh : old.shards) {
    // Largest-first keep order so each survivor lands close to the target.
    auto slices = sh.slices;
    std::sort(slices.begin(), slices.end(), [](const ParamSlice& a, const ParamSlice& b) {
      if (a.length != b.length) return a.length > b.length;
      return a.key < b.key;
    });
    for (const auto& s : slices) {
      if (sh.server_rank < new_num_servers &&
          static_cast<double>(fresh.shards[sh.server_rank].total) < target) {
        fresh.shards[sh.server_rank].slices.push_back(s);
        fresh.shards[sh.server_rank].total += s.length;
      } else {
        pool.push_back(PoolEntry{s, sh.server_rank});
      }
    }
  }

  // LPT the pool onto the least-loaded servers (deterministic tie-breaks).
  std::sort(pool.begin(), pool.end(), [](const PoolEntry& a, const PoolEntry& b) {
    if (a.slice.length != b.slice.length) return a.slice.length > b.slice.length;
    return a.slice.key < b.slice.key;
  });
  for (const auto& entry : pool) {
    std::uint32_t best = 0;
    for (std::uint32_t m = 1; m < new_num_servers; ++m) {
      if (fresh.shards[m].total < fresh.shards[best].total) best = m;
    }
    fresh.shards[best].slices.push_back(entry.slice);
    fresh.shards[best].total += entry.slice.length;
    if (plan != nullptr && entry.from != best) {
      plan->push_back(Migration{entry.slice, entry.from, best});
    }
  }
  for (auto& sh : fresh.shards) {
    std::sort(sh.slices.begin(), sh.slices.end(),
              [](const ParamSlice& a, const ParamSlice& b) { return a.offset < b.offset; });
  }
  fresh.validate();
  return fresh;
}

std::unique_ptr<Slicer> make_slicer(const std::string& kind, std::size_t eps_chunk) {
  if (kind == "default") return std::make_unique<DefaultSlicer>();
  if (kind == "eps") return std::make_unique<EpsSlicer>(eps_chunk);
  FPS_CHECK(false) << "unknown slicer kind: " << kind;
  return nullptr;
}

}  // namespace fluentps::ps
