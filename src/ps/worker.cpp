#include "ps/worker.h"

#include "common/logging.h"
#include "common/stopwatch.h"

namespace fluentps::ps {

WorkerClient::WorkerClient(WorkerSpec spec, net::Transport& transport)
    : node_id_(spec.node_id),
      worker_rank_(spec.worker_rank),
      server_nodes_(std::move(spec.server_nodes)),
      sharding_(spec.sharding),
      scheduler_node_(spec.scheduler_node),
      transport_(transport),
      next_ticket_((static_cast<std::uint64_t>(spec.worker_rank) << 40) + 1) {
  FPS_CHECK(sharding_ != nullptr) << "worker needs a sharding";
  FPS_CHECK(server_nodes_.size() == sharding_->num_servers())
      << "server node list does not match sharding";
  shard_values_.resize(server_nodes_.size());
}

void WorkerClient::handle(net::Message&& msg) {
  std::unique_lock lock(mu_);
  switch (msg.type) {
    case net::MsgType::kPullResp: {
      if (msg.request_id != current_ticket_) {
        FPS_LOG(Warn) << "worker " << worker_rank_ << " dropping stale pull response (ticket "
                      << msg.request_id << ", current " << current_ticket_ << ")";
        return;
      }
      const std::uint32_t m = msg.server_rank;
      FPS_CHECK(m < shard_values_.size()) << "bad server rank in response: " << m;
      shard_values_[m] = std::move(msg.values);
      ++shards_received_;
      break;
    }
    case net::MsgType::kPushAck:
      ++acks_received_;
      break;
    case net::MsgType::kPullGrant:
      grant_received_ = true;
      break;
    case net::MsgType::kShutdown:
      return;
    default:
      FPS_LOG(Warn) << "worker " << worker_rank_ << " ignoring " << msg.to_debug_string();
      return;
  }
  lock.unlock();
  cv_.notify_all();
}

void WorkerClient::push(std::span<const float> update, std::int64_t progress) {
  FPS_CHECK(update.size() == sharding_->num_params) << "update size mismatch";
  {
    std::scoped_lock lock(mu_);
    acks_received_ = 0;
    acks_expected_ = static_cast<std::uint32_t>(server_nodes_.size());
  }
  for (std::size_t m = 0; m < server_nodes_.size(); ++m) {
    const ShardLayout& layout = sharding_->shards[m];
    net::Message msg;
    msg.type = net::MsgType::kPush;
    msg.src = node_id_;
    msg.dst = server_nodes_[m];
    msg.progress = progress;
    msg.worker_rank = worker_rank_;
    msg.server_rank = static_cast<std::uint32_t>(m);
    msg.values.resize(layout.total);
    layout.gather(update, msg.values);
    transport_.send(std::move(msg));
  }
}

void WorkerClient::push_metadata(std::int64_t progress) {
  {
    std::scoped_lock lock(mu_);
    acks_received_ = 0;
    acks_expected_ = static_cast<std::uint32_t>(server_nodes_.size());
  }
  for (std::size_t m = 0; m < server_nodes_.size(); ++m) {
    net::Message msg;
    msg.type = net::MsgType::kPush;
    msg.src = node_id_;
    msg.dst = server_nodes_[m];
    msg.progress = progress;
    msg.worker_rank = worker_rank_;
    msg.server_rank = static_cast<std::uint32_t>(m);
    transport_.send(std::move(msg));
  }
}

std::uint64_t WorkerClient::pull(std::int64_t progress) {
  std::uint64_t ticket = 0;
  {
    std::scoped_lock lock(mu_);
    ticket = next_ticket_++;
    current_ticket_ = ticket;
    shards_received_ = 0;
    for (auto& v : shard_values_) v.clear();
  }
  for (std::size_t m = 0; m < server_nodes_.size(); ++m) {
    net::Message msg;
    msg.type = net::MsgType::kPull;
    msg.src = node_id_;
    msg.dst = server_nodes_[m];
    msg.request_id = ticket;
    msg.progress = progress;
    msg.worker_rank = worker_rank_;
    msg.server_rank = static_cast<std::uint32_t>(m);
    transport_.send(std::move(msg));
  }
  return ticket;
}

void WorkerClient::wait_pull(std::uint64_t ticket, std::span<float> params) {
  FPS_CHECK(params.size() == sharding_->num_params) << "params size mismatch";
  Stopwatch timer;
  std::unique_lock lock(mu_);
  FPS_CHECK(ticket == current_ticket_) << "waiting on a superseded pull ticket";
  cv_.wait(lock, [this] { return shards_received_ == shard_values_.size(); });
  for (std::size_t m = 0; m < shard_values_.size(); ++m) {
    sharding_->shards[m].scatter(shard_values_[m], params);
  }
  blocked_seconds_ += timer.seconds();
}

void WorkerClient::wait_push_acks() {
  Stopwatch timer;
  std::unique_lock lock(mu_);
  cv_.wait(lock, [this] { return acks_received_ >= acks_expected_; });
  blocked_seconds_ += timer.seconds();
}

void WorkerClient::report_and_wait_grant(std::int64_t progress) {
  {
    std::scoped_lock lock(mu_);
    grant_received_ = false;
  }
  net::Message msg;
  msg.type = net::MsgType::kProgress;
  msg.src = node_id_;
  msg.dst = scheduler_node_;
  msg.progress = progress;
  msg.worker_rank = worker_rank_;
  transport_.send(std::move(msg));

  Stopwatch timer;
  std::unique_lock lock(mu_);
  cv_.wait(lock, [this] { return grant_received_; });
  blocked_seconds_ += timer.seconds();
}

double WorkerClient::blocked_seconds() const {
  std::scoped_lock lock(mu_);
  return blocked_seconds_;
}

}  // namespace fluentps::ps
