#include "ps/worker.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "obs/span.h"

namespace fluentps::ps {
namespace {

std::chrono::duration<double> secs(double s) { return std::chrono::duration<double>(s); }

}  // namespace

WorkerClient::WorkerClient(WorkerSpec spec, net::Transport& transport)
    : node_id_(spec.node_id),
      worker_rank_(spec.worker_rank),
      server_nodes_(std::move(spec.server_nodes)),
      sharding_(spec.sharding),
      scheduler_node_(spec.scheduler_node),
      reliable_(spec.reliable),
      retry_(spec.retry),
      transport_(transport),
      retry_rng_(derive_seed(spec.seed, 0x9E7981 + spec.worker_rank), /*stream=*/0x4E7),
      telemetry_(spec.telemetry),
      next_ticket_((static_cast<std::uint64_t>(spec.worker_rank) << 40) + 1) {
  FPS_CHECK(sharding_ != nullptr) << "worker needs a sharding";
  FPS_CHECK(server_nodes_.size() == sharding_->num_servers())
      << "server node list does not match sharding";
  const std::size_t m = server_nodes_.size();
  read_replicas_ = std::move(spec.read_replicas);
  read_replicas_.resize(m);  // tolerate an absent/short list: no offloading
  // Stagger the read round-robin by rank: clients launched together would
  // otherwise rotate in phase and converge on the same chain node each
  // cycle, serializing the whole fleet on one dispatch queue.
  read_rr_ = worker_rank_;
  shard_values_.resize(m);
  push_staging_.resize(m);
  pull_dst_.assign(server_nodes_.begin(), server_nodes_.end());
  pull_wanted_.assign(m, 1);
  pull_received_.assign(m, 0);
  round_seqs_.assign(m, 0);
  round_acked_.assign(m, 1);
  round_trace_.assign(m, 0);
  round_span_.assign(m, 0);
  round_t0_.assign(m, 0);
  next_seq_.assign(m, 1);
  last_acked_progress_.assign(m, -1);
}

void WorkerClient::handle(net::Message&& msg) {
  std::unique_lock lock(mu_);
  switch (msg.type) {
    case net::MsgType::kPullResp: {
      if (msg.request_id != current_ticket_) {
        FPS_LOG(Warn) << "worker " << worker_rank_ << " dropping stale pull response (ticket "
                      << msg.request_id << ", current " << current_ticket_ << ")";
        return;
      }
      const std::uint32_t m = msg.server_rank;
      FPS_CHECK(m < shard_values_.size()) << "bad server rank in response: " << m;
      if (pull_received_[m]) return;  // duplicate response (retransmit raced the original)
      if (pull_bounded_) {
        // Staleness oracle (DESIGN.md §13): a bounded response echoes the
        // serving horizon in `progress` and marks replica service in `seq`.
        // Only replica-served responses are subject to the bound — the head
        // is the freshest state that exists (strong by definition).
        if (msg.seq == kReplicaServedSeq) {
          ++replica_reads_;
          if (msg.progress + pull_bound_ < pull_progress_) ++read_violations_;
        } else {
          ++head_reads_;
        }
        observed_horizon_ = std::max(observed_horizon_, msg.progress);
      }
      // take() moves when the payload is owned and copies exactly once when
      // it borrows the transport's frame buffer (zero-copy receive path).
      shard_values_[m] = msg.values.take();
      pull_received_[m] = 1;
      ++shards_received_;
      break;
    }
    case net::MsgType::kPullRedirect: {
      // A replica could not cover the bound: retry the same ticket at the
      // head, which always serves. Stale redirects (superseded ticket, shard
      // already answered) are no-ops.
      if (msg.request_id != current_ticket_) return;
      const std::uint32_t m = msg.server_rank;
      FPS_CHECK(m < pull_received_.size()) << "bad server rank in redirect: " << m;
      if (pull_received_[m]) return;
      ++read_redirects_;
      pull_dst_[m] = server_nodes_[m];
      send_pull_locked(m);
      break;
    }
    case net::MsgType::kPushAck: {
      const std::uint32_t m = msg.server_rank;
      bool accepted = false;
      if (reliable_) {
        FPS_CHECK(m < round_acked_.size()) << "bad server rank in ack: " << m;
        // Only the live round's sequence number counts; stale acks (from a
        // superseded retransmit of an earlier round) are ignored.
        if (round_unacked_ > 0 && !round_acked_[m] && msg.seq == round_seqs_[m]) {
          round_acked_[m] = 1;
          --round_unacked_;
          last_acked_progress_[m] = std::max(last_acked_progress_[m], round_progress_);
          ++acks_received_;
          accepted = true;
        }
      } else {
        ++acks_received_;
        accepted = true;
      }
      // Close the round's root span on first acceptance: the ack carries the
      // server-side span that released it (stripe apply on the immediate
      // path, replicate on the deferred path), so "worker.ack" pins the
      // round-trip's tail to the right parent.
      if (accepted && telemetry_ != nullptr && telemetry_->spans != nullptr &&
          m < round_trace_.size() && round_trace_[m] != 0) {
        obs::SpanRecorder& sp = *telemetry_->spans;
        const std::uint64_t now = obs::now_ns();
        sp.emit(round_trace_[m], round_span_[m], /*parent=*/0, "worker.push", node_id_,
                round_t0_[m], now);
        if (msg.span_id != 0) {
          sp.emit_instant(round_trace_[m], sp.next_span_id(), msg.span_id, "worker.ack",
                          node_id_, now);
        }
        round_trace_[m] = 0;  // one close per (round, server)
        round_span_[m] = 0;
      }
      break;
    }
    case net::MsgType::kPullGrant:
      if (reliable_) {
        if (msg.progress == awaited_grant_progress_) grant_received_ = true;
      } else {
        grant_received_ = true;
      }
      break;
    case net::MsgType::kRecover: {
      // A server restarted from a checkpoint and asks what it acked to us:
      // reply with the last push progress we saw acked by that server rank.
      // Idempotent on the server side, so answering every kRecover is safe.
      const std::uint32_t m = msg.server_rank;
      net::Message ack;
      ack.type = net::MsgType::kRecoverAck;
      ack.src = node_id_;
      ack.dst = msg.src;
      ack.worker_rank = worker_rank_;
      ack.server_rank = m;
      ack.progress = m < last_acked_progress_.size() ? last_acked_progress_[m] : -1;
      transport_.send(std::move(ack));
      break;
    }
    case net::MsgType::kPromote: {
      // Chain failover: shard server_rank is now served by msg.src. Rebind
      // and immediately re-offer whatever this worker still has outstanding
      // toward that shard — the crashed head may have swallowed the original
      // push/pull, and waiting for the retry timeout would just stall the
      // round. Duplicate promotes (retries, fan-out races) are no-ops.
      const std::uint32_t m = msg.server_rank;
      FPS_CHECK(m < server_nodes_.size()) << "bad server rank in promote: " << m;
      if (server_nodes_[m] == msg.src) return;
      server_nodes_[m] = msg.src;
      // The promoted node is the head now, not a read replica; in-flight
      // bounded reads re-target the head (the crashed head or the promoted
      // node may have swallowed the original request).
      auto& replicas = read_replicas_[m];
      replicas.erase(std::remove(replicas.begin(), replicas.end(), msg.src), replicas.end());
      pull_dst_[m] = msg.src;
      if (reliable_ && round_unacked_ > 0 && !round_acked_[m]) send_push_locked(m);
      if ((reliable_ || pull_bounded_) && current_ticket_ != 0 &&
          shards_received_ < pull_expected_ && !pull_received_[m]) {
        send_pull_locked(m);
      }
      break;
    }
    case net::MsgType::kShutdown:
      return;
    default:
      FPS_LOG(Warn) << "worker " << worker_rank_ << " ignoring " << msg.to_debug_string();
      return;
  }
  // Notify while holding the lock: a waiter returning from wait() cannot
  // destroy the cv under us before notify_all completes.
  cv_.notify_all();
}

void WorkerClient::send_push_locked(std::size_t m) {
  net::Message msg;
  msg.type = net::MsgType::kPush;
  msg.src = node_id_;
  msg.dst = server_nodes_[m];
  msg.seq = round_seqs_[m];
  msg.progress = round_progress_;
  msg.worker_rank = worker_rank_;
  msg.server_rank = static_cast<std::uint32_t>(m);
  msg.trace_id = round_trace_[m];  // 0 when tracing is off (header stays zero)
  msg.span_id = round_span_[m];
  if (!round_metadata_) {
    const ShardLayout& layout = sharding_->shards[m];
    if (transport_.inline_delivery()) {
      // Zero-copy send: gather into the per-server staging buffer and point
      // the message at it. Legal because the transport consumes the bytes
      // inside send() (which runs under mu_, and retransmits re-gather).
      auto& staging = push_staging_[m];
      staging.resize(layout.total);
      layout.gather(round_update_, staging);
      msg.values = net::Payload::borrow(staging);
    } else {
      layout.gather(round_update_, msg.values.mutable_span_resized(layout.total));
    }
  }
  transport_.send(std::move(msg));
}

std::uint32_t WorkerClient::active_servers_locked() const {
  std::uint32_t n = 0;
  for (std::size_t m = 0; m < server_nodes_.size(); ++m) {
    if (!sharding_->shards[m].slices.empty()) ++n;
  }
  return n;
}

void WorkerClient::send_pull_locked(std::size_t m) {
  net::Message msg;
  msg.type = net::MsgType::kPull;
  msg.src = node_id_;
  msg.dst = pull_dst_[m];  // head for strong pulls; RR pick for bounded ones
  msg.request_id = current_ticket_;
  msg.seq = pull_seq_;  // 0 = strong/legacy; s + 1 = bounded (read_options.h)
  msg.progress = pull_progress_;
  msg.worker_rank = worker_rank_;
  msg.server_rank = static_cast<std::uint32_t>(m);
  transport_.send(std::move(msg));
}

void WorkerClient::await_round_acked() {
  Stopwatch timer;
  std::unique_lock lock(mu_);
  std::uint32_t attempt = 0;
  while (round_unacked_ > 0) {
    const double timeout = retry_.timeout_for(attempt, retry_rng_);
    if (cv_.wait_for(lock, secs(timeout), [this] { return round_unacked_ == 0; })) break;
    ++retries_;
    if (retry_.exhausted(attempt) && !budget_warned_) {
      budget_warned_ = true;
      FPS_LOG(Warn) << "worker " << worker_rank_ << " retry budget (" << retry_.budget
                    << ") exhausted waiting for push acks; retransmitting at max timeout";
    } else {
      ++attempt;
    }
    for (std::size_t m = 0; m < round_acked_.size(); ++m) {
      if (!round_acked_[m]) send_push_locked(m);
    }
  }
  blocked_seconds_ += timer.seconds();
}

void WorkerClient::push(std::span<const float> update, std::int64_t progress) {
  FPS_CHECK(update.size() == sharding_->num_params) << "update size mismatch";
  if (reliable_) await_round_acked();  // one outstanding round at a time
  {
    std::scoped_lock lock(mu_);
    acks_received_ = 0;
    acks_expected_ = active_servers_locked();
    round_progress_ = progress;
    round_metadata_ = false;
    round_update_.assign(update.begin(), update.end());
    round_unacked_ = acks_expected_;
    for (std::size_t m = 0; m < server_nodes_.size(); ++m) {
      // Inactive slot (elastic): no slices, nothing to push. Pre-acked so the
      // wait predicate and retransmit sweeps skip it uniformly; its seq stream
      // is not advanced, so it resumes where it left off if the slot rejoins.
      if (sharding_->shards[m].slices.empty()) {
        round_acked_[m] = 1;
        continue;
      }
      round_seqs_[m] = reliable_ ? next_seq_[m]++ : 0;
      round_acked_[m] = 0;
      if (telemetry_ != nullptr && telemetry_->spans != nullptr) {
        round_trace_[m] = telemetry_->spans->next_trace_id();
        round_span_[m] = telemetry_->spans->next_span_id();
        round_t0_[m] = obs::now_ns();
      }
      send_push_locked(m);
    }
  }
}

void WorkerClient::push_metadata(std::int64_t progress) {
  if (reliable_) await_round_acked();
  {
    std::scoped_lock lock(mu_);
    acks_received_ = 0;
    acks_expected_ = active_servers_locked();
    round_progress_ = progress;
    round_metadata_ = true;
    round_update_.clear();
    round_unacked_ = acks_expected_;
    for (std::size_t m = 0; m < server_nodes_.size(); ++m) {
      if (sharding_->shards[m].slices.empty()) {  // inactive slot (elastic)
        round_acked_[m] = 1;
        continue;
      }
      round_seqs_[m] = reliable_ ? next_seq_[m]++ : 0;
      round_acked_[m] = 0;
      if (telemetry_ != nullptr && telemetry_->spans != nullptr) {
        round_trace_[m] = telemetry_->spans->next_trace_id();
        round_span_[m] = telemetry_->spans->next_span_id();
        round_t0_[m] = obs::now_ns();
      }
      send_push_locked(m);
    }
  }
}

std::uint64_t WorkerClient::pull(KeyRange range, const ReadOptions& opts) {
  std::scoped_lock lock(mu_);
  const std::uint64_t ticket = next_ticket_++;
  current_ticket_ = ticket;
  pull_progress_ = opts.clock;
  pull_bounded_ = opts.bounded();
  pull_bound_ = opts.max_staleness_clocks;
  pull_seq_ = encode_read_bound(opts);
  pull_timeout_ = opts.timeout;
  shards_received_ = 0;
  pull_expected_ = 0;
  for (std::size_t m = 0; m < server_nodes_.size(); ++m) {
    shard_values_[m].clear();
    // KeyRange selects *which shards* to contact; a wanted shard's response
    // carries its whole shard (sub-shard slicing is not on the wire). An
    // empty shard (inactive elastic slot) is never wanted: besides being
    // useless traffic, a strong pull would park in its DPR forever — no
    // worker push ever advances an inactive slot's progress.
    bool wanted = !sharding_->shards[m].slices.empty() && range.is_all();
    if (!wanted) {
      for (const ParamSlice& s : sharding_->shards[m].slices) {
        if (range.intersects(s.offset, s.length)) {
          wanted = true;
          break;
        }
      }
    }
    pull_wanted_[m] = wanted ? 1 : 0;
    // Out-of-range shards count as received so the wait predicate and the
    // retransmit sweep skip them uniformly.
    pull_received_[m] = wanted ? 0 : 1;
    if (!wanted) continue;
    ++pull_expected_;
    pull_dst_[m] = server_nodes_[m];
    if (pull_bounded_ && opts.prefer_replica && !read_replicas_[m].empty()) {
      // Round-robin across {head} ∪ replicas: the head stays in rotation so
      // read load spreads over all r chain members, not just r-1.
      const std::size_t n = read_replicas_[m].size() + 1;
      const std::size_t pick = read_rr_++ % n;
      if (pick > 0) pull_dst_[m] = read_replicas_[m][pick - 1];
    }
    send_pull_locked(m);
  }
  return ticket;
}

void WorkerClient::wait_pull(std::uint64_t ticket, std::span<float> params) {
  FPS_CHECK(params.size() == sharding_->num_params) << "params size mismatch";
  Stopwatch timer;
  std::unique_lock lock(mu_);
  FPS_CHECK(ticket == current_ticket_) << "waiting on a superseded pull ticket";
  const auto done = [this] { return shards_received_ == pull_expected_; };
  // Bounded pulls keep the timeout ladder even outside reliable mode: the
  // chosen replica may die mid-request, and only a retransmit re-aimed at the
  // head can unstick the read.
  if (!reliable_ && !pull_bounded_) {
    cv_.wait(lock, done);
  } else {
    std::uint32_t attempt = 0;
    while (!done()) {
      double timeout = retry_.timeout_for(attempt, retry_rng_);
      if (attempt == 0 && pull_timeout_ > 0.0) timeout = pull_timeout_;
      if (cv_.wait_for(lock, secs(timeout), done)) break;
      ++retries_;
      if (retry_.exhausted(attempt) && !budget_warned_) {
        budget_warned_ = true;
        FPS_LOG(Warn) << "worker " << worker_rank_ << " retry budget (" << retry_.budget
                      << ") exhausted waiting for pulls; retransmitting at max timeout";
      } else {
        ++attempt;
      }
      // The pull may be starved because our *push* was lost (a DPR release
      // waits on it), so retransmit both sides of the protocol. Push
      // retransmits are reliable-mode only — without sequence numbers the
      // server would double-apply them. Bounded-read retransmits go to the
      // head: a timed-out replica may be dead, and the head always serves.
      for (std::size_t m = 0; reliable_ && m < round_acked_.size(); ++m) {
        if (round_unacked_ > 0 && !round_acked_[m]) send_push_locked(m);
      }
      for (std::size_t m = 0; m < pull_received_.size(); ++m) {
        if (!pull_received_[m]) {
          pull_dst_[m] = server_nodes_[m];
          send_pull_locked(m);
        }
      }
    }
  }
  for (std::size_t m = 0; m < shard_values_.size(); ++m) {
    if (pull_wanted_[m]) sharding_->shards[m].scatter(shard_values_[m], params);
  }
  blocked_seconds_ += timer.seconds();
}

void WorkerClient::wait_push_acks() {
  if (reliable_) {
    await_round_acked();
    return;
  }
  Stopwatch timer;
  std::unique_lock lock(mu_);
  cv_.wait(lock, [this] { return acks_received_ >= acks_expected_; });
  blocked_seconds_ += timer.seconds();
}

void WorkerClient::send_progress_report(std::int64_t progress) {
  net::Message msg;
  msg.type = net::MsgType::kProgress;
  msg.src = node_id_;
  msg.dst = scheduler_node_;
  msg.progress = progress;
  msg.worker_rank = worker_rank_;
  transport_.send(std::move(msg));
}

void WorkerClient::report_and_wait_grant(std::int64_t progress) {
  {
    std::scoped_lock lock(mu_);
    grant_received_ = false;
    awaited_grant_progress_ = progress;
  }
  send_progress_report(progress);

  Stopwatch timer;
  std::unique_lock lock(mu_);
  const auto granted = [this] { return grant_received_; };
  if (!reliable_) {
    cv_.wait(lock, granted);
  } else {
    std::uint32_t attempt = 0;
    while (!granted()) {
      const double timeout = retry_.timeout_for(attempt, retry_rng_);
      if (cv_.wait_for(lock, secs(timeout), granted)) break;
      ++retries_;
      if (retry_.exhausted(attempt) && !budget_warned_) {
        budget_warned_ = true;
        FPS_LOG(Warn) << "worker " << worker_rank_ << " retry budget (" << retry_.budget
                      << ") exhausted waiting for grant; retransmitting at max timeout";
      } else {
        ++attempt;
      }
      lock.unlock();
      send_progress_report(progress);
      lock.lock();
    }
  }
  blocked_seconds_ += timer.seconds();
}

double WorkerClient::blocked_seconds() const {
  std::scoped_lock lock(mu_);
  return blocked_seconds_;
}

std::int64_t WorkerClient::retries() const {
  std::scoped_lock lock(mu_);
  return retries_;
}

std::int64_t WorkerClient::replica_reads() const {
  std::scoped_lock lock(mu_);
  return replica_reads_;
}

std::int64_t WorkerClient::head_reads() const {
  std::scoped_lock lock(mu_);
  return head_reads_;
}

std::int64_t WorkerClient::read_redirects() const {
  std::scoped_lock lock(mu_);
  return read_redirects_;
}

std::int64_t WorkerClient::read_violations() const {
  std::scoped_lock lock(mu_);
  return read_violations_;
}

std::int64_t WorkerClient::observed_horizon() const {
  std::scoped_lock lock(mu_);
  return observed_horizon_;
}

}  // namespace fluentps::ps
