// Scheduler node.
//
// In FluentPS mode the scheduler only partitions the key space (done by the
// slicer at setup) and monitors server liveness via heartbeats — it is out of
// the synchronization fast path (Section III-A).
//
// In PS-Lite baseline mode it is the synchronization bottleneck the paper
// measures: workers report progress after their pushes are acked, and the
// scheduler grants the pull phase per the global sync model. Internally it
// reuses SyncEngine with the whole model as one virtual shard — a worker's
// kProgress acts as the push, and its implied pull-permission request as the
// pull. That one engine implements BSP/SSP/bounded-delay exactly as a server
// shard would, demonstrating the paper's claim that specifying the pull/push
// conditions unifies all these models.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "net/message.h"
#include "net/transport.h"
#include "ps/sync_engine.h"

namespace fluentps::ps {

struct SchedulerSpec {
  net::NodeId node_id = 0;
  std::uint32_t num_workers = 0;
  std::vector<net::NodeId> worker_nodes;  ///< node id of worker rank n at [n]
  SyncEngine::Spec engine;                ///< global sync model (baseline mode)
  double liveness_timeout = 5.0;          ///< seconds without heartbeat = dead
};

class Scheduler {
 public:
  Scheduler(SchedulerSpec spec, net::Transport& transport);

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Transport handler.
  void handle(net::Message&& msg);

  /// Liveness bookkeeping: record `now` against heartbeats (thread backend
  /// passes wall time, DES passes virtual time).
  void tick(double now);

  /// Servers considered alive as of the last tick().
  [[nodiscard]] std::vector<net::NodeId> alive_servers() const;

  [[nodiscard]] const SyncEngine& engine() const noexcept { return engine_; }
  [[nodiscard]] std::int64_t grants_issued() const noexcept { return grants_issued_; }

  /// Duplicate progress reports suppressed (worker retransmits under faults).
  [[nodiscard]] std::int64_t dedup_hits() const noexcept { return dedup_hits_; }

 private:
  struct PendingGrant {
    std::uint32_t worker;
    std::int64_t progress;
  };

  void grant(std::uint64_t request_id);
  void send_grant(std::uint32_t worker, std::int64_t progress, std::uint64_t request_id);

  net::NodeId node_id_;
  std::uint32_t num_workers_;
  std::vector<net::NodeId> worker_nodes_;
  SyncEngine engine_;
  net::Transport& transport_;
  double liveness_timeout_;

  // request id -> (worker rank, progress), for grants released later.
  std::unordered_map<std::uint64_t, PendingGrant> pending_;
  std::uint64_t next_request_ = 1;
  std::int64_t grants_issued_ = 0;
  std::int64_t dedup_hits_ = 0;
  // Reliability: retransmitted kProgress must neither double-push the engine
  // nor double-enter the pull queue; re-send the grant instead if one was
  // already issued for that progress.
  std::vector<std::int64_t> last_report_;    // per worker, -1 = none
  std::vector<std::int64_t> granted_up_to_;  // per worker, -1 = none

  mutable std::mutex liveness_mu_;
  std::map<net::NodeId, double> last_heartbeat_;
  double now_ = 0.0;
};

}  // namespace fluentps::ps
