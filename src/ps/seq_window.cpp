#include "ps/seq_window.h"

namespace fluentps::ps {

bool SeqWindow::accept(std::uint64_t seq) {
  if (seq == 0) return true;  // unsequenced senders bypass dedup
  if (seq <= floor || seen.contains(seq)) return false;
  seen.insert(seq);
  // Advance the floor over any now-contiguous prefix.
  auto it = seen.begin();
  while (it != seen.end() && *it == floor + 1) {
    ++floor;
    it = seen.erase(it);
  }
  return true;
}

void SeqWindow::save(io::Writer& w) const {
  w.put<std::uint64_t>(floor);
  w.put<std::uint64_t>(seen.size());
  for (const std::uint64_t s : seen) w.put<std::uint64_t>(s);
}

bool SeqWindow::load(io::Reader& r) {
  floor = r.get<std::uint64_t>();
  seen.clear();
  const auto n = r.get<std::uint64_t>();
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) seen.insert(r.get<std::uint64_t>());
  return r.ok();
}

}  // namespace fluentps::ps
