#include "ps/server.h"

#include <utility>

#include "common/logging.h"
#include "ml/ops.h"

namespace fluentps::ps {

Server::Server(ServerSpec spec, net::Transport& transport)
    : node_id_(spec.node_id),
      server_rank_(spec.server_rank),
      num_workers_(spec.num_workers),
      layout_(std::move(spec.layout)),
      ack_pushes_(spec.ack_pushes),
      respond_unconditionally_(spec.respond_unconditionally),
      shard_(std::move(spec.initial_shard)),
      engine_(std::move(spec.engine)),
      transport_(transport) {
  FPS_CHECK(shard_.size() == layout_.total)
      << "initial shard size " << shard_.size() << " != layout total " << layout_.total;
}

void Server::handle(net::Message&& msg) {
  switch (msg.type) {
    case net::MsgType::kPush:
      on_push(std::move(msg));
      break;
    case net::MsgType::kPull:
      on_pull(std::move(msg));
      break;
    case net::MsgType::kShutdown:
      break;  // dispatch loop stops via transport shutdown; nothing to do
    default:
      FPS_LOG(Warn) << "server " << server_rank_ << " ignoring " << msg.to_debug_string();
  }
}

void Server::on_push(net::Message&& msg) {
  // An empty payload is a metadata-only push: the worker reports progress
  // (its update was filtered as insignificant and aggregates locally) and no
  // values are applied.
  double sf = 0.0;
  if (!msg.values.empty()) {
    FPS_CHECK(msg.values.size() == layout_.total)
        << "push size " << msg.values.size() << " != shard size " << layout_.total
        << " (server " << server_rank_ << ")";
    std::scoped_lock lock(shard_mu_);
    // Gradient significance for dynamic PSSP: SF(g, w) = |g| / |w| over this
    // shard (Gaia's significance filter applied at shard granularity).
    const double wn = ml::l2_norm(shard_);
    const double gn = ml::l2_norm(msg.values);
    sf = wn > 0.0 ? gn / wn : 0.0;
    // Algorithm 1 line 15: w <- w + g / N.
    const float scale = 1.0f / static_cast<float>(num_workers_);
    float* w = shard_.data();
    const float* g = msg.values.data();
    for (std::size_t i = 0; i < shard_.size(); ++i) w[i] += scale * g[i];
    ++pushes_applied_;
  }

  if (ack_pushes_) {
    net::Message ack;
    ack.type = net::MsgType::kPushAck;
    ack.src = node_id_;
    ack.dst = msg.src;
    ack.request_id = msg.request_id;
    ack.progress = msg.progress;
    ack.server_rank = server_rank_;
    ack.worker_rank = msg.worker_rank;
    transport_.send(std::move(ack));
  }

  if (respond_unconditionally_) return;  // baseline: no server-side sync logic

  std::vector<std::uint64_t> released;
  {
    std::scoped_lock lock(engine_mu_);
    released = engine_.on_push(msg.worker_rank, msg.progress, sf);
  }
  for (const std::uint64_t id : released) {
    const auto it = pending_.find(id);
    FPS_CHECK(it != pending_.end()) << "released unknown pull request " << id;
    respond(it->second.src, it->second.worker_rank, id);
    pending_.erase(it);
  }
}

void Server::set_pull_condition(PullCondition cond) {
  std::scoped_lock lock(engine_mu_);
  engine_.set_pull_condition(std::move(cond));
}

void Server::set_push_condition(PushCondition cond) {
  std::scoped_lock lock(engine_mu_);
  engine_.set_push_condition(std::move(cond));
}

void Server::on_pull(net::Message&& msg) {
  if (respond_unconditionally_) {
    respond(msg.src, msg.worker_rank, msg.request_id);
    return;
  }
  bool respond_now = false;
  {
    std::scoped_lock lock(engine_mu_);
    respond_now = engine_.on_pull(msg.worker_rank, msg.progress, msg.request_id);
  }
  if (respond_now) {
    respond(msg.src, msg.worker_rank, msg.request_id);
  } else {
    // Delayed pull request: park it until the engine releases the id.
    const auto [it, inserted] =
        pending_.emplace(msg.request_id, PendingPull{msg.src, msg.worker_rank});
    FPS_CHECK(inserted) << "duplicate pull request id " << msg.request_id << " from worker "
                        << msg.worker_rank;
  }
}

void Server::respond(net::NodeId dst, std::uint32_t worker_rank, std::uint64_t request_id) {
  net::Message resp;
  resp.type = net::MsgType::kPullResp;
  resp.src = node_id_;
  resp.dst = dst;
  resp.request_id = request_id;
  resp.server_rank = server_rank_;
  resp.worker_rank = worker_rank;
  {
    std::scoped_lock lock(shard_mu_);
    resp.values = shard_;
  }
  ++pulls_answered_;
  transport_.send(std::move(resp));
}

std::vector<float> Server::snapshot() const {
  std::scoped_lock lock(shard_mu_);
  return shard_;
}

void Server::snapshot_into(std::span<float> flat) const {
  std::scoped_lock lock(shard_mu_);
  layout_.scatter(shard_, flat);
}

}  // namespace fluentps::ps
