#include "ps/server.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include <limits>

#include "common/logging.h"
#include "ml/ops.h"
#include "obs/span.h"
#include "ps/read_options.h"

namespace fluentps::ps {
namespace {

constexpr std::uint32_t kServerBlobMagic = 0x53525632;  // "SRV2"
constexpr std::size_t kAnsweredWindow = 4096;           // recently answered pulls kept

std::vector<std::size_t> slice_lengths_of(const ShardLayout& layout) {
  std::vector<std::size_t> lens;
  lens.reserve(layout.slices.size());
  for (const auto& s : layout.slices) lens.push_back(s.length);
  return lens;
}

}  // namespace

Server::Server(ServerSpec spec, net::Transport& transport)
    : node_id_(spec.node_id),
      server_rank_(spec.server_rank),
      num_workers_(spec.num_workers),
      layout_(std::move(spec.layout)),
      ack_pushes_(spec.ack_pushes || spec.reliable),
      respond_unconditionally_(spec.respond_unconditionally),
      reliable_(spec.reliable),
      read_serve_seconds_(spec.read_serve_seconds),
      worker_nodes_(std::move(spec.worker_nodes)),
      // layout_ (declared earlier) is already initialized here; spec.layout
      // was moved from, so derive stripe boundaries from the member.
      // With a dedicated apply pool the stripe pages stay untouched until
      // each pool thread first-touches its own partition (NUMA placement);
      // the PushCombiner constructor below blocks until that completes.
      shard_(std::move(spec.initial_shard), std::max<std::uint32_t>(spec.apply_stripes, 1),
             slice_lengths_of(layout_), /*defer_first_touch=*/spec.apply_threads >= 1),
      combiner_(shard_,
                PushCombinerSpec{
                    .batch = spec.batch_pushes,
                    .lockfree = spec.lockfree_handoff,
                    .ring_depth = spec.ring_depth,
                    .apply_threads = spec.apply_threads,
                    .pin_threads = spec.pin_threads,
                    .pin_slot_base = spec.server_rank * std::max(spec.apply_threads, 1u),
                    .telemetry = spec.telemetry,
                }),
      engine_(std::move(spec.engine)),
      push_seen_(spec.num_workers),
      recover_base_(spec.num_workers, -1),
      synth_floor_(spec.num_workers, -1),
      transport_(transport),
      replica_successor_(spec.replica_successor),
      telemetry_(spec.telemetry) {
  FPS_CHECK(shard_.size() == layout_.total)
      << "initial shard size " << shard_.size() << " != layout total " << layout_.total;
  if (telemetry_ != nullptr && telemetry_->registry != nullptr) {
    enqueue_to_drain_hist_ =
        &telemetry_->registry->histogram("server.enqueue_to_drain_ns");
    apply_ns_hist_ = &telemetry_->registry->histogram("server.apply_ns");
  }
  // Skip the two whole-shard norm passes per push unless some condition will
  // actually read SF (DESIGN.md §8).
  need_significance_.store(engine_.uses_significance(), std::memory_order_relaxed);
  if (reliable_) {
    FPS_CHECK(worker_nodes_.size() == num_workers_)
        << "reliable server needs the worker node list for recovery";
  }
  // Chain replication defers worker acks to the ack horizon, which only makes
  // sense in the at-least-once protocol, and a scheduler-gated baseline
  // server has no reliability layer to defer through.
  FPS_CHECK(replica_successor_ == 0 || (reliable_ && !respond_unconditionally_))
      << "replica_successor requires reliable FluentPS mode";
}

void Server::handle(net::Message&& msg) {
  switch (msg.type) {
    case net::MsgType::kPush:
      on_push(std::move(msg));
      break;
    case net::MsgType::kPull:
      on_pull(std::move(msg));
      break;
    case net::MsgType::kRecoverAck:
      on_recover_ack(std::move(msg));
      break;
    case net::MsgType::kReplicateAck:
      on_replicate_ack(std::move(msg));
      break;
    case net::MsgType::kReplicate: {
      // Only a *promoted* head sees kReplicate: in-flight frames from the
      // crashed predecessor delivered after the failover. Dropping them is
      // safe — their updates are either already in the adopted state (the
      // window saw them) or unacked at the worker, which retransmits.
      std::scoped_lock lock(engine_mu_);
      ++stale_replicates_;
      break;
    }
    case net::MsgType::kMigrateSnapshot:
      on_migrate_snapshot(std::move(msg));
      break;
    case net::MsgType::kMigrateDelta:
      on_migrate_delta(std::move(msg));
      break;
    case net::MsgType::kMigrateAck:
      on_migrate_ack(std::move(msg));
      break;
    case net::MsgType::kShutdown:
      break;  // dispatch loop stops via transport shutdown; nothing to do
    default:
      FPS_LOG(Warn) << "server " << server_rank_ << " ignoring " << msg.to_debug_string();
  }
}

void Server::on_push(net::Message&& msg) {
  // Cross-hop tracing (DESIGN.md §12): ids for the three server-side pipeline
  // spans are pre-allocated here because the kReplicate forward below happens
  // *before* the apply, yet its span must parent on the apply span.
  obs::SpanRecorder* spans =
      (telemetry_ != nullptr && msg.trace_id != 0) ? telemetry_->spans : nullptr;
  std::uint32_t enqueue_span = 0, drain_span = 0, apply_span = 0;
  std::uint64_t t_enter = 0;
  if (spans != nullptr) {
    t_enter = obs::now_ns();
    enqueue_span = spans->next_span_id();
    drain_span = spans->next_span_id();
    apply_span = spans->next_span_id();
  }
  bool defer_ack = false;  // replication: ack withheld until the ack horizon
  if (reliable_) {
    bool fresh = false;
    net::Message fwd;  // kReplicate to the successor (fresh or chain repair)
    bool send_fwd = false;
    std::vector<net::Message> delta_msgs;  // elastic migration taps (sent unlocked)
    {
      std::scoped_lock lock(engine_mu_);
      FPS_CHECK(msg.worker_rank < push_seen_.size()) << "push from unknown worker";
      if (!awaiting_recover_.empty()) {
        // Nag EVERY worker still missing from the handshake, not only the
        // sender: a worker that already finished training never sends again,
        // so a lost kRecover to it can only be re-driven by other traffic.
        nag_recovery_locked();
        if (awaiting_recover_.contains(msg.worker_rank)) {
          // Quiesce this worker until its kRecoverAck arrives: accepting the
          // push now could race the recovery synthesis into double-counting.
          // No ack is sent, so the worker's retry loop re-offers it later.
          return;
        }
      }
      if (msg.progress <= synth_floor_[msg.worker_rank]) {
        // A stale duplicate from before the crash, whose count was restored
        // via recovery synthesis: ack (the sender may still be waiting) but
        // apply nothing.
        fresh = false;
        ++dedup_hits_;
      } else {
        fresh = push_seen_[msg.worker_rank].accept(msg.seq);
        if (!fresh) ++dedup_hits_;
      }
      if (replica_successor_ != 0) {
        if (fresh) {
          // Log + forward before the apply: the window accept and the lsn
          // assignment must be one atomic step, or a concurrent retransmit
          // (TCP reader threads) could slip between them, miss the log entry
          // and ack an unreplicated update. The log owns a copy — fault
          // injection can re-deliver the forward after `msg` is gone.
          replica::LogEntry& e =
              repl_log_.append(msg.worker_rank, msg.seq, msg.progress, msg.values.span());
          if (ack_pushes_) {
            e.acks.push_back({msg.src, msg.request_id, msg.seq, msg.progress, msg.worker_rank});
            defer_ack = true;
          }
          fwd = make_replicate(e.lsn, msg.worker_rank, msg.seq, msg.progress);
          if (spans != nullptr) {
            // Open the "replicate" span now; on_replicate_ack closes it when
            // the tail's horizon covers this lsn. The successor parents its
            // own hop on fwd.span_id.
            ReplSpanCtx ctx;
            ctx.trace_id = msg.trace_id;
            ctx.span_id = spans->next_span_id();
            ctx.parent_id = apply_span;
            ctx.start_ns = obs::now_ns();
            fwd.trace_id = ctx.trace_id;
            fwd.span_id = ctx.span_id;
            repl_spans_.emplace(e.lsn, ctx);
          }
          if (transport_.inline_delivery()) {
            // Zero-copy: bytes consumed inside send(); `msg` outlives it.
            fwd.values = net::Payload::borrow(msg.values.span());
          } else {
            fwd.values.assign(msg.values.begin(), msg.values.end());
          }
          send_fwd = true;
          ++replica_forwards_;
        } else if (replica::LogEntry* e = repl_log_.find(msg.worker_rank, msg.seq)) {
          // Retransmit of a push whose lsn has NOT reached the tail yet: the
          // loss the retry is healing may be *inside the chain* (a dropped
          // kReplicate or kReplicateAck), so re-forward the entry and keep
          // the worker's ack deferred — acking now could strand the update.
          bool recorded = false;
          for (const replica::DeferredAck& a : e->acks) {
            if (a.request_id == msg.request_id && a.seq == msg.seq) {
              recorded = true;
              break;
            }
          }
          if (!recorded) {
            e->acks.push_back({msg.src, msg.request_id, msg.seq, msg.progress, msg.worker_rank});
          }
          fwd = make_replicate(e->lsn, e->worker_rank, e->seq, e->progress);
          fwd.values.assign(e->values.begin(), e->values.end());
          send_fwd = true;
          defer_ack = true;
          ++repl_repairs_;
        }
      }
      if (fresh && !msg.values.empty()) {
        // Closes the snapshot race for migrate_out_begin (which holds
        // engine_mu_ while waiting the counter down): accepted here means
        // either applied before a future snapshot or visible to its tap.
        applies_inflight_.fetch_add(1, std::memory_order_relaxed);
        if (!migrations_out_.empty() && msg.values.size() == layout_.total) {
          tap_migrations_locked(msg, delta_msgs);
        }
      }
    }
    if (send_fwd) transport_.send(std::move(fwd));
    for (net::Message& d : delta_msgs) transport_.send(std::move(d));
    if (!fresh) {
      if (defer_ack) return;  // ack released by on_replicate_ack
      // Retransmit of an already-applied push: ack again (the original ack
      // was evidently lost) but touch neither the shard nor the engine.
      net::Message ack;
      ack.type = net::MsgType::kPushAck;
      ack.src = node_id_;
      ack.dst = msg.src;
      ack.request_id = msg.request_id;
      ack.seq = msg.seq;
      ack.progress = msg.progress;
      ack.server_rank = server_rank_;
      ack.worker_rank = msg.worker_rank;
      transport_.send(std::move(ack));
      return;
    }
  }

  // An empty payload is a metadata-only push: the worker reports progress
  // (its update was filtered as insignificant and aggregates locally) and no
  // values are applied.
  double sf = 0.0;
  ApplyTiming timing;
  const bool want_timing = spans != nullptr || apply_ns_hist_ != nullptr;
  if (!msg.values.empty()) {
    FPS_CHECK(msg.values.size() == layout_.total)
        << "push size " << msg.values.size() << " != shard size " << layout_.total
        << " (server " << server_rank_ << ")";
    // Algorithm 1 line 15: w <- w + g / N. The payload may borrow the
    // transport's frame buffer — safe because apply_push() returns only
    // after the values were applied (we block inside the handler).
    sf = apply_push(msg.values, want_timing ? &timing : nullptr);
    if (reliable_) applies_inflight_.fetch_sub(1, std::memory_order_release);
    pushes_applied_.fetch_add(1, std::memory_order_relaxed);
    if (apply_ns_hist_ != nullptr) {
      enqueue_to_drain_hist_->record(timing.drained_ns - timing.enqueue_ns);
      apply_ns_hist_->record(timing.applied_ns - timing.drained_ns);
    }
  }
  if (spans != nullptr) {
    // Metadata-only pushes have no apply; collapse the missing stages to
    // zero-length spans so the parent chain stays intact either way.
    const std::uint64_t t0 =
        timing.enqueue_ns != 0 ? timing.enqueue_ns : obs::now_ns();
    const std::uint64_t t1 = timing.drained_ns != 0 ? timing.drained_ns : t0;
    const std::uint64_t t2 = timing.applied_ns != 0 ? timing.applied_ns : t1;
    spans->emit(msg.trace_id, enqueue_span, msg.span_id, "server.enqueue",
                node_id_, t_enter, t0);
    spans->emit(msg.trace_id, drain_span, enqueue_span, "combiner.drain",
                node_id_, t0, t1);
    spans->emit(msg.trace_id, apply_span, drain_span, "stripe.apply", node_id_,
                t1, t2);
  }

  if (ack_pushes_ && !defer_ack) {
    net::Message ack;
    ack.type = net::MsgType::kPushAck;
    ack.src = node_id_;
    ack.dst = msg.src;
    ack.request_id = msg.request_id;
    ack.seq = msg.seq;
    ack.progress = msg.progress;
    ack.server_rank = server_rank_;
    ack.worker_rank = msg.worker_rank;
    if (spans != nullptr) {
      // Immediate (unreplicated) ack: the worker's ack mark parents on the
      // apply span. Deferred acks parent on the replicate span instead.
      ack.trace_id = msg.trace_id;
      ack.span_id = apply_span;
    }
    transport_.send(std::move(ack));
  }

  if (respond_unconditionally_) return;  // baseline: no server-side sync logic

  std::vector<std::uint64_t> released;
  std::vector<std::pair<PendingPull, std::uint64_t>> to_respond;
  {
    std::scoped_lock lock(engine_mu_);
    released = engine_.on_push(msg.worker_rank, msg.progress, sf);
    for (const std::uint64_t id : released) {
      const auto it = pending_.find(id);
      FPS_CHECK(it != pending_.end()) << "released unknown pull request " << id;
      to_respond.emplace_back(it->second, id);
      pending_.erase(it);
      note_answered(id);
    }
  }
  for (const auto& [pp, id] : to_respond) respond(pp.src, pp.worker_rank, id);
}

double Server::apply_push(std::span<const float> g, ApplyTiming* timing) {
  const float scale = 1.0f / static_cast<float>(num_workers_);
  if (need_significance_.load(std::memory_order_relaxed)) {
    // Exact legacy path: SF must be computed against the pre-apply shard of
    // *this* push, so applies serialize (exclusive whole-shard sweep). There
    // is no handoff to time — enqueue and drain collapse onto the start.
    if (timing != nullptr) {
      timing->enqueue_ns = obs::now_ns();
      timing->drained_ns = timing->enqueue_ns;
    }
    const double sf = shard_.apply_exclusive_with_significance(g, scale);
    if (timing != nullptr) timing->applied_ns = obs::now_ns();
    return sf;
  }
  // Combiner handoff (DESIGN.md §11): blocks until the gradient landed, so
  // borrowed payloads stay valid and apply-before-count ordering holds.
  combiner_.apply(g, scale, timing);
  return 0.0;
}

void Server::set_pull_condition(PullCondition cond) {
  std::scoped_lock lock(engine_mu_);
  // A user-installed condition may consult significance: conservatively
  // switch the apply path back to exact per-push SF computation.
  need_significance_.store(true, std::memory_order_relaxed);
  engine_.set_pull_condition(std::move(cond));
}

void Server::set_push_condition(PushCondition cond) {
  std::scoped_lock lock(engine_mu_);
  need_significance_.store(true, std::memory_order_relaxed);
  engine_.set_push_condition(std::move(cond));
}

void Server::note_answered(std::uint64_t request_id) {
  // Caller holds engine_mu_. Bounded memory: evict oldest entries.
  if (!reliable_) return;
  if (answered_.insert(request_id).second) {
    answered_fifo_.push_back(request_id);
    while (answered_fifo_.size() > kAnsweredWindow) {
      answered_.erase(answered_fifo_.front());
      answered_fifo_.pop_front();
    }
  }
}

void Server::on_bounded_read(const net::Message& msg) {
  // The head always satisfies a bounded read: it *is* the freshest state in
  // the chain, so no bound check applies (there is nowhere fresher to
  // redirect to). Idempotent and engine-free, so duplicates need no dedup
  // and ranks outside the training set (inference fleet) are fine.
  if (read_serve_seconds_ > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(read_serve_seconds_));
  }
  std::int64_t h = -1;
  if (num_workers_ > 0) {
    std::scoped_lock lock(engine_mu_);
    h = std::numeric_limits<std::int64_t>::max();
    for (std::uint32_t w = 0; w < num_workers_; ++w) {
      h = std::min(h, engine_.last_push_of(w));
    }
  }
  net::Message resp;
  resp.type = net::MsgType::kPullResp;
  resp.src = node_id_;
  resp.dst = msg.src;
  resp.request_id = msg.request_id;
  resp.progress = h;  // serving horizon; seq stays 0 = head-served
  resp.server_rank = server_rank_;
  resp.worker_rank = msg.worker_rank;
  shard_.copy_out(resp.values.mutable_span_resized(shard_.size()));
  bounded_reads_.fetch_add(1, std::memory_order_relaxed);
  pulls_answered_.fetch_add(1, std::memory_order_relaxed);
  transport_.send(std::move(resp));
}

void Server::on_pull(net::Message&& msg) {
  if (is_bounded_read(msg.seq)) {
    on_bounded_read(msg);
    return;
  }
  if (respond_unconditionally_) {
    // Idempotent by construction: parameters are monotone-fresh, so a
    // retransmitted pull just gets the current shard again.
    if (reliable_) {
      std::scoped_lock lock(engine_mu_);
      note_answered(msg.request_id);
    }
    respond(msg.src, msg.worker_rank, msg.request_id);
    return;
  }
  bool respond_now = false;
  {
    std::scoped_lock lock(engine_mu_);
    if (reliable_) {
      if (!awaiting_recover_.empty()) {
        nag_recovery_locked();  // see on_push: keeps done workers' handshakes alive
        if (awaiting_recover_.contains(msg.worker_rank)) {
          // Quiesce until this worker's kRecoverAck arrives; the worker's
          // pull retry loop will re-request once recovery completes.
          return;
        }
      }
      if (pending_.contains(msg.request_id)) {
        // Retransmit of a pull that is still buffered as a DPR: the engine
        // already owns the id; answering now would violate the condition.
        ++dedup_hits_;
        return;
      }
      if (answered_.contains(msg.request_id)) {
        // Retransmit of a pull whose response was lost: re-answer with the
        // current (>= as fresh) shard, without re-entering the engine.
        ++dedup_hits_;
        respond_now = true;
      }
    }
    if (!respond_now) {
      respond_now = engine_.on_pull(msg.worker_rank, msg.progress, msg.request_id);
      if (respond_now) {
        note_answered(msg.request_id);
      } else {
        // Delayed pull request: park it until the engine releases the id.
        const auto [it, inserted] =
            pending_.emplace(msg.request_id, PendingPull{msg.src, msg.worker_rank});
        FPS_CHECK(inserted) << "duplicate pull request id " << msg.request_id << " from worker "
                            << msg.worker_rank;
        return;
      }
    }
  }
  respond(msg.src, msg.worker_rank, msg.request_id);
}

void Server::respond(net::NodeId dst, std::uint32_t worker_rank, std::uint64_t request_id) {
  net::Message resp;
  resp.type = net::MsgType::kPullResp;
  resp.src = node_id_;
  resp.dst = dst;
  resp.request_id = request_id;
  resp.server_rank = server_rank_;
  resp.worker_rank = worker_rank;
  // Striped copy-out: slice-atomic, not push-atomic — a response may contain
  // stripe k with a concurrent push applied and stripe k+1 without it
  // (PS-Lite's per-key consistency; DESIGN.md §8). Parameters are monotone-
  // fresh either way.
  shard_.copy_out(resp.values.mutable_span_resized(shard_.size()));
  pulls_answered_.fetch_add(1, std::memory_order_relaxed);
  transport_.send(std::move(resp));
}

std::vector<float> Server::snapshot() const {
  return shard_.snapshot();
}

void Server::snapshot_into(std::span<float> flat) const {
  const std::vector<float> values = shard_.snapshot();
  layout_.scatter(values, flat);
}

// --- crash-restart lifecycle ----------------------------------------------

std::vector<std::uint8_t> Server::save_state() const {
  io::Writer w;
  std::scoped_lock lock(engine_mu_);
  w.put<std::uint32_t>(kServerBlobMagic);
  w.put<std::uint32_t>(server_rank_);
  // Push-atomic view: with_exclusive holds every stripe while the values are
  // serialized (lock order engine_mu_ -> stripes, same as everywhere).
  shard_.with_exclusive([&w](std::span<const float> values) {
    w.put<std::uint64_t>(values.size());
    w.put_raw(values.data(), values.size() * sizeof(float));
  });
  engine_.save(w);
  w.put<std::uint64_t>(push_seen_.size());
  for (const auto& win : push_seen_) win.save(w);
  return w.take();
}

bool Server::restore_state(const std::vector<std::uint8_t>& blob) {
  io::Reader r(blob);
  std::vector<float> shard;
  {
    std::scoped_lock lock(engine_mu_);
    if (r.get<std::uint32_t>() != kServerBlobMagic) return false;
    if (r.get<std::uint32_t>() != server_rank_) return false;
    shard = r.get_vector<float>();
    if (!r.ok() || shard.size() != layout_.total) return false;
    if (!engine_.load(r)) return false;
    const auto n = r.get<std::uint64_t>();
    if (n != push_seen_.size()) return false;
    for (auto& win : push_seen_) {
      if (!win.load(r)) return false;
    }
    if (!r.ok()) return false;
    shard_.with_exclusive([&shard](std::span<float> values) {
      std::copy(shard.begin(), shard.end(), values.begin());
    });
    // In-flight bookkeeping dies with the process: buffered pulls were
    // cleared by engine_.load, lost responses come back via retransmits.
    pending_.clear();
    answered_.clear();
    answered_fifo_.clear();
    // Remember the last *counted* push per worker; kRecoverAck replays the
    // counts between here and each worker's last-acked push. (progress_of
    // would be wrong: a pull can advance it past the last counted push.)
    for (std::uint32_t w = 0; w < num_workers_; ++w) recover_base_[w] = engine_.last_push_of(w);
    ++recoveries_;
  }
  return true;
}

void Server::begin_recovery() {
  if (!reliable_) return;
  {
    std::scoped_lock lock(engine_mu_);
    awaiting_recover_.clear();
    if (!respond_unconditionally_) {  // baseline servers hold no sync counts
      for (std::uint32_t w = 0; w < num_workers_; ++w) awaiting_recover_.insert(w);
    }
  }
  for (std::uint32_t w = 0; w < num_workers_; ++w) send_recover(worker_nodes_[w], w);
}

void Server::nag_recovery_locked() {
  for (const std::uint32_t w : awaiting_recover_) send_recover(worker_nodes_[w], w);
}

void Server::send_recover(net::NodeId dst, std::uint32_t worker_rank) {
  net::Message m;
  m.type = net::MsgType::kRecover;
  m.src = node_id_;
  m.dst = dst;
  m.server_rank = server_rank_;
  m.worker_rank = worker_rank;
  transport_.send(std::move(m));
}

bool Server::recovering() const {
  std::scoped_lock lock(engine_mu_);
  return !awaiting_recover_.empty();
}

void Server::on_recover_ack(net::Message&& msg) {
  if (!reliable_) return;
  const std::uint32_t w = msg.worker_rank;
  std::vector<std::pair<PendingPull, std::uint64_t>> to_respond;
  {
    std::scoped_lock lock(engine_mu_);
    if (!awaiting_recover_.erase(w)) return;  // duplicate ack: already replayed
    // The worker reports the last push it saw acked (p_acked). Every push in
    // (recover_base_[w], p_acked] was applied-and-acked before the crash but
    // rolled back by the checkpoint restore; the worker will NOT retransmit
    // those (it holds acks), so re-count them here or Count[i] never
    // completes and BSP-like modes deadlock. Pushes beyond p_acked arrive as
    // retransmits and are counted normally.
    const std::int64_t p_acked = msg.progress;
    synth_floor_[w] = std::max(synth_floor_[w], p_acked);
    for (std::int64_t p = recover_base_[w] + 1; p <= p_acked; ++p) {
      // Each synthesized count is an update the checkpoint restore rolled
      // back out of the shard — the checkpoint path's lost-update tally that
      // the chain-failover path keeps at zero (see ablation_replication).
      ++synth_replayed_;
      const auto released = engine_.on_push(w, p, 0.0);
      for (const std::uint64_t id : released) {
        const auto it = pending_.find(id);
        if (it == pending_.end()) continue;  // released id belonged to a pre-crash pull
        to_respond.emplace_back(it->second, id);
        pending_.erase(it);
        note_answered(id);
      }
    }
  }
  for (const auto& [pp, id] : to_respond) respond(pp.src, pp.worker_rank, id);
}

// --- chain replication -----------------------------------------------------

net::Message Server::make_replicate(std::uint64_t lsn, std::uint32_t worker_rank,
                                    std::uint64_t seq, std::int64_t progress) const {
  net::Message fwd;
  fwd.type = net::MsgType::kReplicate;
  fwd.src = node_id_;
  fwd.dst = replica_successor_;
  fwd.request_id = lsn;
  fwd.seq = seq;
  fwd.progress = progress;
  fwd.worker_rank = worker_rank;
  fwd.server_rank = server_rank_;
  return fwd;
}

void Server::on_replicate_ack(net::Message&& msg) {
  obs::SpanRecorder* spans = telemetry_ != nullptr ? telemetry_->spans : nullptr;
  struct OutAck {
    replica::DeferredAck a;
    std::uint64_t trace_id = 0;
    std::uint32_t span_id = 0;
  };
  std::vector<OutAck> acks;
  {
    std::scoped_lock lock(engine_mu_);
    // Cumulative horizon: every lsn <= request_id reached the tail. Trimmed
    // entries release the worker acks deferred onto them; a traced entry also
    // closes its "replicate" span here and stamps the released acks so the
    // worker's ack mark parents on it.
    repl_log_.trim_to(msg.request_id, [&](replica::LogEntry& e) {
      std::uint64_t trace = 0;
      std::uint32_t span = 0;
      const auto it = repl_spans_.find(e.lsn);
      if (it != repl_spans_.end()) {
        trace = it->second.trace_id;
        span = it->second.span_id;
        if (spans != nullptr) {
          spans->emit(trace, span, it->second.parent_id, "replicate", node_id_,
                      it->second.start_ns, obs::now_ns());
        }
        repl_spans_.erase(it);
      }
      for (replica::DeferredAck& a : e.acks) acks.push_back({a, trace, span});
    });
  }
  for (const OutAck& oa : acks) {
    net::Message ack;
    ack.type = net::MsgType::kPushAck;
    ack.src = node_id_;
    ack.dst = oa.a.dst;
    ack.request_id = oa.a.request_id;
    ack.seq = oa.a.seq;
    ack.progress = oa.a.progress;
    ack.server_rank = server_rank_;
    ack.worker_rank = oa.a.worker_rank;
    ack.trace_id = oa.trace_id;
    ack.span_id = oa.span_id;
    transport_.send(std::move(ack));
  }
}

void Server::adopt_replica_state(replica::ReplicaState&& state) {
  std::scoped_lock lock(engine_mu_);
  FPS_CHECK(state.shard.size() == layout_.total)
      << "replica shard size " << state.shard.size() << " != layout total " << layout_.total;
  FPS_CHECK(state.windows.size() == num_workers_ && state.last_push.size() == num_workers_)
      << "replica state worker count mismatch";
  shard_.with_exclusive([&state](std::span<float> values) {
    std::copy(state.shard.begin(), state.shard.end(), values.begin());
  });
  // The mirrored windows make retransmits of already-replicated pushes dedup
  // hits at the new head — exactly-once across the failover.
  push_seen_ = std::move(state.windows);
  // Fresh engine progress, replayed deterministically from what the replica
  // saw (same zero-significance synthesis the checkpoint path uses, but with
  // nothing rolled back: replicated state ⊇ worker-acked state).
  engine_.reset_progress(state.last_push);
  repl_log_ = std::move(state.log);
  // In-flight pull bookkeeping died with the old head; workers re-request
  // through their retry ladder once kPromote rebinds them.
  pending_.clear();
  answered_.clear();
  answered_fifo_.clear();
  // Span contexts belong to the old head's forwards; the adopted log's
  // entries were never forwarded by *us*, so drop any stale contexts.
  repl_spans_.clear();
  promoted_ = true;
}

void Server::replay_replication_log() {
  if (replica_successor_ == 0) return;
  std::vector<net::Message> msgs;
  {
    std::scoped_lock lock(engine_mu_);
    for (const replica::LogEntry& e : repl_log_.pending()) {
      net::Message fwd = make_replicate(e.lsn, e.worker_rank, e.seq, e.progress);
      fwd.values.assign(e.values.begin(), e.values.end());
      msgs.push_back(std::move(fwd));
    }
    replica_forwards_ += static_cast<std::int64_t>(msgs.size());
  }
  for (net::Message& m : msgs) transport_.send(std::move(m));
}

std::size_t Server::replication_pending() const {
  std::scoped_lock lock(engine_mu_);
  return repl_log_.size();
}

std::size_t Server::replication_high_water() const {
  std::scoped_lock lock(engine_mu_);
  return repl_log_.high_water();
}

std::int64_t Server::replica_forwards() const {
  std::scoped_lock lock(engine_mu_);
  return replica_forwards_;
}

std::int64_t Server::repl_repairs() const {
  std::scoped_lock lock(engine_mu_);
  return repl_repairs_;
}

std::int64_t Server::stale_replicates() const {
  std::scoped_lock lock(engine_mu_);
  return stale_replicates_;
}

std::int64_t Server::synth_replayed() const {
  std::scoped_lock lock(engine_mu_);
  return synth_replayed_;
}

bool Server::promoted() const {
  std::scoped_lock lock(engine_mu_);
  return promoted_;
}

// --- elastic live shard migration (DESIGN.md §14) ---------------------------

std::size_t Server::migrate_out_begin(std::uint64_t migration_id, std::size_t slice_index,
                                      net::NodeId target, std::uint32_t target_rank) {
  FPS_CHECK(reliable_) << "elastic migration requires the reliability layer";
  net::Message snap;
  std::size_t bytes = 0;
  {
    std::scoped_lock lock(engine_mu_);
    FPS_CHECK(slice_index < layout_.slices.size())
        << "migrate_out_begin: slice " << slice_index << " of " << layout_.slices.size();
    // Wait out accepted-but-unapplied pushes while holding engine_mu_ (new
    // accepts block on the lock; appliers never take it, so this terminates).
    // After the wait, shard ⊇ every accepted push; after the tap below, every
    // future accept is forwarded — the snapshot/delta partition is exact.
    while (applies_inflight_.load(std::memory_order_acquire) != 0) {
      std::this_thread::yield();
    }
    MigrationOut mo;
    mo.id = migration_id;
    mo.slice = layout_.slices[slice_index];
    for (std::size_t i = 0; i < slice_index; ++i) mo.pos += layout_.slices[i].length;
    mo.target = target;
    mo.target_rank = target_rank;
    snap.type = net::MsgType::kMigrateSnapshot;
    snap.src = node_id_;
    snap.dst = target;
    snap.seq = migration_id;
    snap.request_id = 0;  // lsn 0: the snapshot itself
    snap.progress = static_cast<std::int64_t>(mo.slice.offset);
    snap.server_rank = server_rank_;
    std::span<float> out = snap.values.mutable_span_resized(mo.slice.length);
    const std::size_t pos = mo.pos;
    const std::size_t len = mo.slice.length;
    shard_.with_exclusive([&](std::span<const float> values) {
      ml::copy(values.subspan(pos, len), out);
    });
    migrations_out_.push_back(std::move(mo));
    bytes = len * sizeof(float);
    migrate_bytes_.fetch_add(static_cast<std::int64_t>(bytes), std::memory_order_relaxed);
  }
  transport_.send(std::move(snap));
  return bytes;
}

void Server::tap_migrations_locked(const net::Message& msg, std::vector<net::Message>& out) {
  for (MigrationOut& mo : migrations_out_) {
    const std::span<const float> g = msg.values.span().subspan(mo.pos, mo.slice.length);
    const replica::LogEntry& e = mo.log.append(msg.worker_rank, msg.seq, msg.progress, g);
    net::Message d;
    d.type = net::MsgType::kMigrateDelta;
    d.src = node_id_;
    d.dst = mo.target;
    d.seq = mo.id;
    d.request_id = e.lsn;
    d.progress = static_cast<std::int64_t>(mo.slice.offset);
    d.server_rank = server_rank_;
    d.worker_rank = msg.worker_rank;
    d.values.assign(g.begin(), g.end());
    out.push_back(std::move(d));
    ++migrate_deltas_;
    migrate_bytes_.fetch_add(static_cast<std::int64_t>(g.size() * sizeof(float)),
                             std::memory_order_relaxed);
  }
}

bool Server::migrations_drained() const {
  std::scoped_lock lock(engine_mu_);
  for (const MigrationOut& mo : migrations_out_) {
    if (!mo.snapshot_acked || !mo.log.empty()) return false;
  }
  return true;
}

void Server::on_migrate_snapshot(net::Message&& msg) {
  std::uint64_t horizon = 0;
  net::NodeId src = msg.src;
  const std::uint64_t id = msg.seq;
  {
    std::scoped_lock lock(engine_mu_);
    MigrationIn& mi = migrations_in_[id];
    mi.source = msg.src;
    mi.slice_offset = static_cast<std::size_t>(msg.progress);
    mi.staged.assign(msg.values.begin(), msg.values.end());
    mi.have_snapshot = true;
    migrate_bytes_.fetch_add(static_cast<std::int64_t>(mi.staged.size() * sizeof(float)),
                             std::memory_order_relaxed);
    // Catch-up deltas that overtook the snapshot (reordered fabric) become
    // applicable now.
    const float scale = 1.0f / static_cast<float>(num_workers_);
    for (auto it = mi.stash.begin();
         it != mi.stash.end() && it->first == mi.applied_lsn + 1; it = mi.stash.erase(it)) {
      ml::axpy(scale, it->second, mi.staged);
      mi.applied_lsn = it->first;
    }
    horizon = mi.applied_lsn;
  }
  send_migrate_ack(src, id, horizon);
}

void Server::on_migrate_delta(net::Message&& msg) {
  std::uint64_t horizon = 0;
  bool ack = false;
  net::NodeId src = msg.src;
  const std::uint64_t id = msg.seq;
  {
    std::scoped_lock lock(engine_mu_);
    MigrationIn& mi = migrations_in_[id];  // may precede the snapshot
    if (mi.source == 0) mi.source = msg.src;
    const std::uint64_t lsn = msg.request_id;
    if (lsn <= mi.applied_lsn) return;  // duplicate (control plane: unexpected)
    if (!mi.have_snapshot || lsn != mi.applied_lsn + 1) {
      mi.stash.emplace(lsn, std::vector<float>(msg.values.begin(), msg.values.end()));
      return;  // acked once it becomes contiguously applicable
    }
    // Same arithmetic as the source's apply (w += g / N), restricted to the
    // migrating slice: the staged buffer ends up holding exactly the updates
    // the source folded in after the snapshot, each exactly once.
    const float scale = 1.0f / static_cast<float>(num_workers_);
    FPS_CHECK(msg.values.size() == mi.staged.size())
        << "migrate delta size " << msg.values.size() << " != staged " << mi.staged.size();
    ml::axpy(scale, msg.values.span(), mi.staged);
    mi.applied_lsn = lsn;
    migrate_bytes_.fetch_add(static_cast<std::int64_t>(msg.values.size() * sizeof(float)),
                             std::memory_order_relaxed);
    for (auto it = mi.stash.begin();
         it != mi.stash.end() && it->first == mi.applied_lsn + 1; it = mi.stash.erase(it)) {
      ml::axpy(scale, it->second, mi.staged);
      mi.applied_lsn = it->first;
    }
    horizon = mi.applied_lsn;
    ack = true;
  }
  if (ack) send_migrate_ack(src, id, horizon);
}

void Server::on_migrate_ack(net::Message&& msg) {
  std::scoped_lock lock(engine_mu_);
  for (MigrationOut& mo : migrations_out_) {
    if (mo.id != msg.seq) continue;
    // Any ack implies the snapshot is staged (the target only acks after it
    // has one); request_id is the cumulative delta horizon.
    mo.snapshot_acked = true;
    mo.log.trim_to(msg.request_id, [](const replica::LogEntry&) {});
    return;
  }
}

void Server::send_migrate_ack(net::NodeId dst, std::uint64_t migration_id,
                              std::uint64_t horizon) {
  net::Message ack;
  ack.type = net::MsgType::kMigrateAck;
  ack.src = node_id_;
  ack.dst = dst;
  ack.seq = migration_id;
  ack.request_id = horizon;
  ack.server_rank = server_rank_;
  transport_.send(std::move(ack));
}

void Server::commit_layout(ShardLayout new_layout) {
  std::scoped_lock lock(engine_mu_);
  for (const MigrationOut& mo : migrations_out_) {
    FPS_CHECK(mo.snapshot_acked && mo.log.empty())
        << "commit_layout with undrained outbound migration " << mo.id;
  }
  FPS_CHECK(pending_.empty())
      << "commit_layout with " << pending_.size() << " pulls still pending (fence broken)";
  std::vector<float> values(new_layout.total);
  // Old slices carried over by model offset; new slices come from a staged
  // inbound migration.
  shard_.with_exclusive([&](std::span<const float> old_values) {
    std::size_t pos = 0;
    for (const ParamSlice& s : new_layout.slices) {
      std::size_t old_pos = 0;
      bool found = false;
      for (const ParamSlice& o : layout_.slices) {
        if (o.offset == s.offset) {
          FPS_CHECK(o.length == s.length) << "slice at offset " << s.offset << " resized";
          ml::copy(old_values.subspan(old_pos, s.length),
                   std::span<float>(values).subspan(pos, s.length));
          found = true;
          break;
        }
        old_pos += o.length;
      }
      if (!found) {
        bool staged = false;
        for (auto& [id, mi] : migrations_in_) {
          if (mi.slice_offset != s.offset) continue;
          FPS_CHECK(mi.have_snapshot && mi.stash.empty())
              << "commit_layout: inbound migration " << id << " not fully staged";
          FPS_CHECK(mi.staged.size() == s.length)
              << "staged slice size " << mi.staged.size() << " != " << s.length;
          ml::copy(std::span<const float>(mi.staged),
                   std::span<float>(values).subspan(pos, s.length));
          staged = true;
          break;
        }
        FPS_CHECK(staged) << "commit_layout: no staged values for new slice at offset "
                          << s.offset;
      }
      pos += s.length;
    }
  });
  migrations_out_.clear();
  migrations_in_.clear();
  layout_ = std::move(new_layout);
  shard_.reconfigure(std::move(values), slice_lengths_of(layout_));
}

void Server::seed_engine_progress(const std::vector<std::int64_t>& last_push) {
  std::scoped_lock lock(engine_mu_);
  engine_.reset_progress(last_push);
}

replica::ReplicaState Server::export_replica_seed() const {
  std::scoped_lock lock(engine_mu_);
  replica::ReplicaState s;
  shard_.with_exclusive(
      [&](std::span<const float> v) { s.shard.assign(v.begin(), v.end()); });
  s.windows = push_seen_;
  s.last_push.resize(num_workers_);
  for (std::uint32_t w = 0; w < num_workers_; ++w) s.last_push[w] = engine_.last_push_of(w);
  s.log.set_next_lsn(repl_log_.next_lsn());
  return s;
}

std::int64_t Server::migrate_bytes() const {
  return migrate_bytes_.load(std::memory_order_relaxed);
}

std::int64_t Server::migrate_deltas() const {
  std::scoped_lock lock(engine_mu_);
  return migrate_deltas_;
}

}  // namespace fluentps::ps
