// Per-sender duplicate-suppression window for the at-least-once reliability
// layer. Split out of server.h so the chain-replication subsystem
// (src/replica) can mirror the head's dedup state without depending on the
// full Server type: replicas maintain one SeqWindow per worker and hand the
// set to the promoted server at failover, which is what keeps replayed and
// retransmitted pushes exactly-once across a promotion.
#pragma once

#include <cstdint>
#include <set>

#include "common/serialization.h"

namespace fluentps::ps {

/// Per-sender duplicate-suppression window: all sequence numbers <= floor
/// have been seen; numbers above it live in a sparse set until the floor
/// catches up. Memory stays O(gap), not O(stream).
struct SeqWindow {
  std::uint64_t floor = 0;
  std::set<std::uint64_t> seen;

  /// True if `seq` is new (and records it). seq 0 bypasses dedup.
  bool accept(std::uint64_t seq);

  void save(io::Writer& w) const;
  [[nodiscard]] bool load(io::Reader& r);
};

}  // namespace fluentps::ps
