// Condition-aware synchronization (Sections III-B, III-E; Table III).
//
// A synchronization model is nothing but a pair (PULL_con, PUSH_con):
//
//   Model            Pull condition                        Push condition
//   BSP              progress <  V_train                   Count[V_train] == N
//   ASP              progress <  V_train + inf             Count[V_train] == N
//   SSP              progress <  V_train + s               Count[V_train] == N
//   DSPS             progress <  V_train + s(t)            Count[V_train] == N
//   Drop stragglers  progress <  V_train                   Count[V_train] == N_t
//   PSSP             progress <  V_train + s  OR  coin     Count[V_train] == N
//
// Conditions are plain values; users install their own via
// SyncEngine::set_pull_condition / set_push_condition (the paper's
// SetcondPull / SetcondPush APIs), with the full synchronization state
// exposed through SyncView.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/rng.h"

namespace fluentps::ps {

/// Read-only view of a shard's synchronization state, handed to conditions.
/// This is the paper's "interfaces expose details of the synchronization
/// state, e.g., the progress of fastest/slowest worker, the number of
/// workers that have pushed gradients in a specified iteration".
struct SyncView {
  std::int64_t v_train = 0;        ///< overall training progress of this shard
  std::uint32_t num_workers = 0;   ///< N
  std::int64_t fastest = -1;       ///< max progress reported by any worker
  std::int64_t slowest = -1;       ///< min progress reported by any worker
  std::uint32_t count_at_vtrain = 0;  ///< Count[V_train]

  /// Count[i] for arbitrary i (0 when absent).
  std::function<std::uint32_t(std::int64_t)> count_at;

  /// Gradient significance SF(g, w) = |g|/|w| from the named worker's most
  /// recent push (0 if it has not pushed). Used by dynamic PSSP with a
  /// significance-function alpha.
  std::function<double(std::uint32_t)> significance_of;

  /// Running mean significance across recent pushes on this shard.
  double mean_significance = 0.0;
};

/// Context of one pull request evaluation.
struct PullCtx {
  std::uint32_t worker = 0;
  std::int64_t progress = 0;
  /// True on the first evaluation (request just arrived); false when the
  /// engine re-checks a buffered request. Probabilistic conditions roll their
  /// coin only when `initial` is true, so a blocked worker stays blocked
  /// until the deterministic part of the condition holds.
  bool initial = true;
};

/// True = respond to the pull now; false = buffer it (it becomes a DPR).
using PullCondition = std::function<bool(const PullCtx&, const SyncView&, Rng&)>;

/// True = advance V_train and execute the buffered pulls for it.
using PushCondition = std::function<bool(const SyncView&)>;

/// Declarative description of a synchronization model.
struct SyncModelSpec {
  std::string kind = "bsp";  ///< bsp|asp|ssp|dsps|drop|pssp|pssp_dynamic
  std::int64_t staleness = 0;  ///< s
  double prob = 0.5;           ///< constant PSSP blocking probability c
  double alpha = 1.0;          ///< dynamic PSSP alpha (constant variant)
  bool alpha_significance = false;  ///< dynamic PSSP: alpha = f(gradient significance)
  std::uint32_t drop_nt = 0;   ///< drop stragglers N_t (0 -> ceil(2N/3))

  // DSPS controller knobs: s adapts inside [min_s, max_s] tracking the
  // observed progress spread with an EMA.
  std::int64_t dsps_min_s = 1;
  std::int64_t dsps_max_s = 16;
  double dsps_ema = 0.05;

  /// Short label for tables ("ssp(s=3)", "pssp(s=3,c=0.5)", ...).
  [[nodiscard]] std::string label() const;
};

/// A compiled synchronization model: the condition pair plus shared mutable
/// state (DSPS's adaptive s). One instance per shard.
struct SyncModel {
  PullCondition pull;
  PushCondition push;
  /// For DSPS: the current adaptive staleness (nullptr otherwise); exposed so
  /// tests and metrics can observe the adaptation. Written only from pull
  /// evaluation, which the engine serializes.
  std::shared_ptr<std::int64_t> adaptive_s;
  /// True when the conditions consume gradient significance SF = |g|/|w|
  /// (dynamic PSSP with alpha_significance). Servers use this to skip the two
  /// whole-shard norm passes on the apply hot path when no condition will
  /// ever read them (DESIGN.md §8); installing a custom condition via
  /// SetcondPull/SetcondPush conservatively re-enables them.
  bool uses_significance = false;
};

/// Compile a spec into conditions for a shard with N workers.
SyncModel make_sync_model(const SyncModelSpec& spec, std::uint32_t num_workers);

/// The PSSP pause probability P(s, k): 0 for k < s; for k >= s, `c` in the
/// constant model or alpha / (1 + e^(s-k)) in the dynamic model.
double pssp_constant_probability(std::int64_t s, std::int64_t k, double c) noexcept;
double pssp_dynamic_probability(std::int64_t s, std::int64_t k, double alpha) noexcept;

/// Regret upper bounds from Section III-E (used by the theory bench):
/// SSP (Eq 1):            4FL * sqrt(2(s+1)N / T)
/// constant PSSP (Eq 3):  4FL * sqrt(2(s + 1/c)N / T)
double ssp_regret_bound(double F, double L, std::int64_t s, std::uint32_t N, std::int64_t T) noexcept;
double pssp_regret_bound(double F, double L, std::int64_t s, double c, std::uint32_t N,
                         std::int64_t T) noexcept;

}  // namespace fluentps::ps
