// Parameter-server node.
//
// Owns one shard (the slices a slicer assigned to it), applies pushed
// updates (w += update / N, Algorithm 1 line 15), and delegates all
// synchronization decisions to its own SyncEngine — this per-server autonomy
// is FluentPS's core architectural move (overlap synchronization, Section
// III-D): no central scheduler gates the pull of shard m on the state of
// shard m'.
//
// The handler is invoked from a single execution context (dispatch thread or
// DES), so engine and pending-request state need no locks; only the shard
// values take a mutex because snapshot() may be called from other threads.
#pragma once

#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "net/message.h"
#include "net/transport.h"
#include "ps/slicing.h"
#include "ps/sync_engine.h"

namespace fluentps::ps {

struct ServerSpec {
  net::NodeId node_id = 0;
  std::uint32_t server_rank = 0;
  std::uint32_t num_workers = 0;
  ShardLayout layout;                 ///< slices this server owns
  std::vector<float> initial_shard;   ///< initial values, gathered from w0
  SyncEngine::Spec engine;            ///< synchronization model for this shard
  bool ack_pushes = false;            ///< reply kPushAck (baseline protocol)
  /// Baseline (PS-Lite non-overlap) mode: the scheduler gates pulls, so the
  /// server answers every pull immediately and skips its sync engine.
  bool respond_unconditionally = false;
};

class Server {
 public:
  Server(ServerSpec spec, net::Transport& transport);

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Transport handler; register with transport.register_node(node_id, ...).
  void handle(net::Message&& msg);

  /// Thread-safe copy of the current shard values (concatenated slices).
  [[nodiscard]] std::vector<float> snapshot() const;

  /// Scatter this server's current values into a flat parameter vector.
  void snapshot_into(std::span<float> flat) const;

  [[nodiscard]] const SyncEngine& engine() const noexcept { return engine_; }
  [[nodiscard]] const ShardLayout& layout() const noexcept { return layout_; }
  [[nodiscard]] std::uint32_t rank() const noexcept { return server_rank_; }
  [[nodiscard]] net::NodeId node_id() const noexcept { return node_id_; }

  /// Pushes applied / pulls answered so far.
  [[nodiscard]] std::int64_t pushes_applied() const noexcept { return pushes_applied_; }
  [[nodiscard]] std::int64_t pulls_answered() const noexcept { return pulls_answered_; }

  /// Install a new condition at runtime (SetcondPull / SetcondPush). Safe to
  /// call from any thread; takes effect for subsequent requests.
  void set_pull_condition(PullCondition cond);
  void set_push_condition(PushCondition cond);

 private:
  void on_push(net::Message&& msg);
  void on_pull(net::Message&& msg);
  void respond(net::NodeId dst, std::uint32_t worker_rank, std::uint64_t request_id);

  struct PendingPull {
    net::NodeId src;
    std::uint32_t worker_rank;
  };

  net::NodeId node_id_;
  std::uint32_t server_rank_;
  std::uint32_t num_workers_;
  ShardLayout layout_;
  bool ack_pushes_;
  bool respond_unconditionally_;

  mutable std::mutex shard_mu_;  // guards shard_ only (snapshot from other threads)
  std::vector<float> shard_;

  // The engine normally runs single-context (dispatch thread or DES), but
  // runtime condition changes may arrive from other threads; this mutex
  // serializes them against request handling.
  std::mutex engine_mu_;
  SyncEngine engine_;
  std::unordered_map<std::uint64_t, PendingPull> pending_;
  net::Transport& transport_;

  std::int64_t pushes_applied_ = 0;
  std::int64_t pulls_answered_ = 0;
};

}  // namespace fluentps::ps
