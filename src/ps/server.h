// Parameter-server node.
//
// Owns one shard (the slices a slicer assigned to it), applies pushed
// updates (w += update / N, Algorithm 1 line 15), and delegates all
// synchronization decisions to its own SyncEngine — this per-server autonomy
// is FluentPS's core architectural move (overlap synchronization, Section
// III-D): no central scheduler gates the pull of shard m on the state of
// shard m'.
//
// Reliability (fault subsystem): with ServerSpec::reliable the server speaks
// an at-least-once protocol. Pushes carry per-worker sequence numbers and are
// deduplicated through a SeqWindow (floor + sparse set), so retransmits never
// double-apply gradients or double-count Count[i] in the sync engine;
// duplicate pulls are answered idempotently (parameters are monotone-fresh,
// so re-answering with the current shard is safe). save_state()/
// restore_state() serialize shard + engine + dedup windows for crash-restart;
// begin_recovery() runs the kRecover/kRecoverAck handshake that re-learns
// each worker's last fully-acked push and synthesizes the Count[i] increments
// the checkpoint rolled back — without this, BSP-like modes deadlock after a
// restart because workers already hold acks for pushes the restore undid.
//
// Hot path (DESIGN.md §8, §11): gradient applies go through a PushCombiner —
// concurrent pushes (real on the TCP backend, where each inbound connection
// has its own reader thread) hand off through a bounded lock-free MPSC ring
// (or the legacy mutex flat-combining queue as the A/B baseline) and coalesce
// into one striped axpy sweep over a StripedShard whose lock stripes align to
// slice boundaries. The enqueuing thread blocks until its entry is applied,
// which keeps zero-copy (frame-borrowing) payloads safe to queue and
// preserves apply-before-count ordering per message. With apply_threads >= 1
// a dedicated drain/apply pool sweeps instead, with each thread pinned to its
// core and first-touching its own stripe partition (NUMA-aware placement).
// Whole-shard norms for gradient significance are computed only when the
// sync model consumes them.
//
// The handler may be invoked concurrently (TCP reader threads); engine +
// reliability state take engine_mu_ because condition changes and
// crash-restart also arrive from outside the handler. Lock order:
// engine_mu_ -> ring -> stripes.
#pragma once

#include <atomic>
#include <map>
#include <mutex>
#include <set>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "common/serialization.h"
#include "net/message.h"
#include "net/transport.h"
#include "ps/push_combiner.h"
#include "ps/seq_window.h"
#include "ps/slicing.h"
#include "ps/striped_shard.h"
#include "ps/sync_engine.h"
#include "replica/replication_log.h"

namespace fluentps::ps {

struct ServerSpec {
  net::NodeId node_id = 0;
  std::uint32_t server_rank = 0;
  std::uint32_t num_workers = 0;
  ShardLayout layout;                 ///< slices this server owns
  std::vector<float> initial_shard;   ///< initial values, gathered from w0
  SyncEngine::Spec engine;            ///< synchronization model for this shard
  bool ack_pushes = false;            ///< reply kPushAck (baseline protocol)
  /// Baseline (PS-Lite non-overlap) mode: the scheduler gates pulls, so the
  /// server answers every pull immediately and skips its sync engine.
  bool respond_unconditionally = false;
  /// At-least-once mode: dedup retransmitted pushes/pulls, always ack pushes,
  /// answer the crash-recovery handshake.
  bool reliable = false;
  /// Worker node ids (index = rank); required when reliable for the
  /// kRecover broadcast after a restart.
  std::vector<net::NodeId> worker_nodes;
  /// Coalesce concurrent pushes into one striped axpy sweep (flat combining;
  /// DESIGN.md §8). Off = apply each push individually (A/B baseline). Both
  /// paths are bit-identical per message order.
  bool batch_pushes = true;
  /// Lock stripes over the shard, boundaries aligned to slice boundaries
  /// (replaces the old whole-shard mutex).
  std::uint32_t apply_stripes = 8;
  /// Combiner handoff mechanism (DESIGN.md §11): lock-free bounded MPSC ring
  /// (default) vs the legacy batch_mu_ flat-combining queue (A/B baseline).
  /// Bit-identical per arrival order either way.
  bool lockfree_handoff = true;
  /// Capacity of the handoff ring; a full ring is backpressure (the producer
  /// spins/helps), never a drop.
  std::uint32_t ring_depth = 1024;
  /// Modeled per-bounded-read service cost (threads backend): the dispatch
  /// thread sleeps this long before answering a bounded kPull, standing in
  /// for real read-serving work (deserialize + snapshot + serialize on a
  /// loaded node). Serializes reads per node — the quantity chain-replica
  /// offloading spreads across the chain. 0 = serve at memcpy speed. The
  /// sim backend models the same cost via server_proc_seconds instead.
  double read_serve_seconds = 0.0;
  /// Dedicated drain/apply threads. 0 = handler threads combine in place
  /// (the flat-combining model); >= 1 spawns a drain thread plus helpers
  /// that sweep disjoint stripe partitions, each first-touching its own
  /// stripes (NUMA-aware placement).
  std::uint32_t apply_threads = 0;
  /// Pin apply/drain threads to cores (common/affinity.h; no-op when the
  /// platform cannot pin).
  bool pin_threads = false;
  /// Chain replication (DESIGN.md §9): node id of this shard's first replica.
  /// When non-zero every fresh push is logged and forwarded as kReplicate,
  /// and its worker ack is withheld until the tail's cumulative kReplicateAck
  /// covers it — the zero-loss invariant (a worker never holds an ack for an
  /// update a failover could lose). Requires reliable mode. 0 = no chain.
  net::NodeId replica_successor = 0;
  /// Telemetry (DESIGN.md §12): wait-free live metrics + cross-hop span
  /// capture. nullptr (or null members) disables recording entirely.
  obs::Telemetry* telemetry = nullptr;
};

class Server {
 public:
  Server(ServerSpec spec, net::Transport& transport);

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Transport handler; register with transport.register_node(node_id, ...).
  void handle(net::Message&& msg);

  /// Thread-safe copy of the current shard values (concatenated slices).
  [[nodiscard]] std::vector<float> snapshot() const;

  /// Scatter this server's current values into a flat parameter vector.
  void snapshot_into(std::span<float> flat) const;

  [[nodiscard]] const SyncEngine& engine() const noexcept { return engine_; }
  [[nodiscard]] const ShardLayout& layout() const noexcept { return layout_; }
  [[nodiscard]] std::uint32_t rank() const noexcept { return server_rank_; }
  [[nodiscard]] net::NodeId node_id() const noexcept { return node_id_; }

  /// Pushes applied / pulls answered so far.
  [[nodiscard]] std::int64_t pushes_applied() const noexcept {
    return pushes_applied_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t pulls_answered() const noexcept {
    return pulls_answered_.load(std::memory_order_relaxed);
  }

  /// Bounded reads (DESIGN.md §13) answered directly from the shard. The head
  /// is the chain's ground truth, so it serves every bounded read regardless
  /// of the requested bound — counted separately from engine-gated pulls.
  [[nodiscard]] std::int64_t bounded_reads() const noexcept {
    return bounded_reads_.load(std::memory_order_relaxed);
  }

  /// Batched-apply observability: combiner sweeps performed and the largest
  /// number of pushes coalesced into one sweep (1 when batching is off or no
  /// pushes ever overlapped).
  [[nodiscard]] std::int64_t apply_sweeps() const noexcept { return combiner_.sweeps(); }
  [[nodiscard]] std::size_t max_batch() const noexcept { return combiner_.max_batch(); }

  /// Ingest-path observability (DESIGN.md §11): apply() calls that hit a full
  /// handoff ring (backpressure events), the deepest ring occupancy observed,
  /// and how many apply threads successfully pinned themselves.
  [[nodiscard]] std::int64_t ring_stalls() const noexcept { return combiner_.ring_stalls(); }
  [[nodiscard]] std::size_t ring_depth_high_water() const noexcept {
    return combiner_.ring_depth_high_water();
  }
  [[nodiscard]] std::uint32_t pinned_threads() const noexcept {
    return combiner_.pinned_threads();
  }

  /// Retransmits suppressed by the dedup windows (reliable mode).
  [[nodiscard]] std::int64_t dedup_hits() const noexcept { return dedup_hits_; }
  /// Checkpoint restores performed (crash-restart lifecycle).
  [[nodiscard]] std::int64_t recoveries() const noexcept { return recoveries_; }
  /// True while the post-restart handshake still awaits worker acks.
  [[nodiscard]] bool recovering() const;

  /// Install a new condition at runtime (SetcondPull / SetcondPush). Safe to
  /// call from any thread; takes effect for subsequent requests.
  void set_pull_condition(PullCondition cond);
  void set_push_condition(PushCondition cond);

  // --- crash-restart lifecycle (fault subsystem) ----------------------

  /// Serialize shard + sync engine + dedup windows into a checkpoint blob.
  /// Thread-safe; call periodically from the runtime.
  [[nodiscard]] std::vector<std::uint8_t> save_state() const;

  /// Restore from a save_state() blob (simulating a process restart from the
  /// latest checkpoint). Pending/answered pull bookkeeping is cleared — lost
  /// responses are re-requested by worker retransmits. Returns false on a
  /// corrupt or mismatched blob.
  [[nodiscard]] bool restore_state(const std::vector<std::uint8_t>& blob);

  /// Broadcast kRecover to every worker; their kRecoverAck replies report the
  /// last push each one saw acked, letting the engine re-count pushes that
  /// the checkpoint rolled back. Call after restore_state() once the node is
  /// reachable again.
  void begin_recovery();

  // --- chain replication (replica subsystem, DESIGN.md §9) ------------

  /// Failover: install the state a chain successor released — replicated
  /// shard values, the mirrored per-worker dedup windows (exactly-once across
  /// the promotion), the last replicated push progress per worker (replayed
  /// deterministically into a fresh sync engine), and the successor's own
  /// pending log. In-flight pull bookkeeping is cleared; workers re-request
  /// via their retry ladder once kPromote rebinds them. No kRecover handshake
  /// is needed: replicated state is a superset of worker-acked state (acks
  /// are deferred to the ack horizon), so nothing was rolled back.
  void adopt_replica_state(replica::ReplicaState&& state);

  /// After adopt_replica_state(): re-forward every still-pending log entry to
  /// the new successor (when one remains), restarting the ack flow for
  /// updates the crash stranded mid-chain.
  void replay_replication_log();

  /// Replication log entries currently awaiting the ack horizon.
  [[nodiscard]] std::size_t replication_pending() const;
  /// Largest pending count ever observed — the measured replication lag bound.
  [[nodiscard]] std::size_t replication_high_water() const;
  /// kReplicate messages forwarded to the successor (fresh pushes).
  [[nodiscard]] std::int64_t replica_forwards() const;
  /// Chain repairs: retransmits that re-forwarded a still-pending entry.
  [[nodiscard]] std::int64_t repl_repairs() const;
  /// kReplicate frames ignored because this server is a promoted head (late
  /// traffic from the crashed predecessor).
  [[nodiscard]] std::int64_t stale_replicates() const;
  /// Push counts synthesized by checkpoint recovery (on_recover_ack) — the
  /// updates the restore rolled back. Stays 0 on the chain-failover path.
  [[nodiscard]] std::int64_t synth_replayed() const;
  /// True once adopt_replica_state() installed failover state.
  [[nodiscard]] bool promoted() const;

  // --- elastic live shard migration (src/elastic, DESIGN.md §14) ------

  /// Source side: begin migrating the slice at `slice_index` of the current
  /// layout to the server at node `target` (slot `target_rank`). Waits out
  /// in-flight applies, snapshots the slice push-atomically, sends it as
  /// kMigrateSnapshot on the zero-copy payload path, and registers a delta
  /// tap: every subsequently accepted fresh push appends its slice-range
  /// gradient to a per-migration catch-up log (replica::ReplicationLog) and
  /// forwards it as kMigrateDelta. The tap registration shares on_push's
  /// engine_mu_ critical section with the SeqWindow accept, so every push is
  /// either in the snapshot or tapped — never both, never neither. Requires
  /// reliable mode. Returns the snapshot size in bytes.
  std::size_t migrate_out_begin(std::uint64_t migration_id, std::size_t slice_index,
                                net::NodeId target, std::uint32_t target_rank);

  /// True once every outbound migration's snapshot and tapped deltas were
  /// acknowledged as staged by the target (cumulative kMigrateAck horizon).
  /// A moving target while traffic flows — the controller polls it before
  /// raising the fence, then re-checks it once every worker is parked.
  [[nodiscard]] bool migrations_drained() const;

  /// Fence-time commit: install the post-epoch layout. Every slice of
  /// `new_layout` must either exist in the current layout (values carried
  /// over) or be fully staged by an inbound migration (snapshot + all deltas
  /// applied). Outbound migrations must be drained. The shard storage is
  /// reconfigured in place (StripedShard::reconfigure); migration state is
  /// cleared. Callers must have quiesced all training traffic (every worker
  /// parked with its push round fully acked).
  void commit_layout(ShardLayout new_layout);

  /// Seed a newly activated slot's engine with per-worker progress collected
  /// at the fence (each parked worker's last pushed iteration). Without this
  /// a worker that already finished training would never push here and
  /// BSP/SSP conditions would wait on its progress forever.
  void seed_engine_progress(const std::vector<std::int64_t>& last_push);

  /// Chain reseed at the fence: push-atomic snapshot of shard values, dedup
  /// windows, per-worker progress and the head's current lsn position, for
  /// ReplicaNode::adopt_seed on this slot's (resized) replicas.
  [[nodiscard]] replica::ReplicaState export_replica_seed() const;

  /// Migration observability: payload bytes sent/staged by this server's
  /// migrations (snapshots + deltas, both directions) and deltas tapped.
  [[nodiscard]] std::int64_t migrate_bytes() const;
  [[nodiscard]] std::int64_t migrate_deltas() const;

 private:
  void on_push(net::Message&& msg);
  void on_pull(net::Message&& msg);
  /// Bounded read (ps/read_options.h): answer immediately from the shard,
  /// bypassing the engine, pull dedup and recovery quiescing — reads are
  /// idempotent snapshots and the requester may not be a training worker the
  /// engine knows about (inference-fleet ranks live outside its arrays).
  void on_bounded_read(const net::Message& msg);
  void on_recover_ack(net::Message&& msg);
  /// Cumulative ack from the successor: trim the log to the horizon and
  /// release the worker push acks deferred onto the trimmed entries.
  void on_replicate_ack(net::Message&& msg);
  /// Header-only kReplicate to the successor (payload attached by callers).
  [[nodiscard]] net::Message make_replicate(std::uint64_t lsn, std::uint32_t worker_rank,
                                            std::uint64_t seq, std::int64_t progress) const;
  /// Apply one push's gradient (size layout_.total) with w += g / N,
  /// returning the significance SF = |g|/|w| when the sync model consumes it
  /// (0.0 otherwise — the engine ignores it then).
  ///
  /// Fast path: the gradient is handed to the PushCombiner, which blocks the
  /// calling thread until a coalesced sweep applied it. Blocking inside the
  /// call is what makes borrowed payloads (TCP frame buffers) safe to queue
  /// without copying, and preserves the apply-before-engine-count ordering
  /// per message (see push_combiner.h for the handoff mechanisms).
  double apply_push(std::span<const float> g, ApplyTiming* timing = nullptr);
  void respond(net::NodeId dst, std::uint32_t worker_rank, std::uint64_t request_id);
  void note_answered(std::uint64_t request_id);
  /// Requires engine_mu_: append `msg`'s slice-range gradients to every
  /// active outbound migration's catch-up log and build the kMigrateDelta
  /// frames into `out` (sent by the caller after releasing the lock).
  void tap_migrations_locked(const net::Message& msg, std::vector<net::Message>& out);
  /// Target-side handlers: stage the snapshot / apply catch-up deltas in lsn
  /// order (out-of-order arrivals are stashed), ack the cumulative horizon.
  void on_migrate_snapshot(net::Message&& msg);
  void on_migrate_delta(net::Message&& msg);
  /// Source side: mark the snapshot staged and trim the catch-up log.
  void on_migrate_ack(net::Message&& msg);
  void send_migrate_ack(net::NodeId dst, std::uint64_t migration_id, std::uint64_t horizon);
  void send_recover(net::NodeId dst, std::uint32_t worker_rank);
  /// Requires engine_mu_ held: re-send kRecover to every worker still missing
  /// from the post-restart handshake.
  void nag_recovery_locked();

  struct PendingPull {
    net::NodeId src;
    std::uint32_t worker_rank;
  };

  net::NodeId node_id_;
  std::uint32_t server_rank_;
  std::uint32_t num_workers_;
  ShardLayout layout_;
  bool ack_pushes_;
  bool respond_unconditionally_;
  bool reliable_;
  double read_serve_seconds_;
  std::vector<net::NodeId> worker_nodes_;

  // Striped value storage (replaces the old shard_mu_ + vector): pulls and
  // snapshots read stripe-by-stripe while applies sweep, checkpoints take
  // every stripe. Lock order: engine_mu_ -> ring -> stripes (never the
  // reverse).
  StripedShard shard_;

  // Combiner handoff (DESIGN.md §11): handler threads enqueue their gradient
  // span (lock-free MPSC ring or the legacy mutex queue) and block until a
  // coalesced sweep applied it. Owns the optional drain/apply thread pool.
  PushCombiner combiner_;

  // True when the apply path must compute SF = |g|/|w| per push (the model's
  // conditions read it). Conservatively set by set_pull/push_condition since
  // a user-installed condition may consult significance.
  std::atomic<bool> need_significance_{false};

  // Guards the engine plus all reliability bookkeeping: request handling runs
  // single-context, but condition changes and the crash-restart lifecycle
  // arrive from other threads (chaos thread in the thread backend).
  mutable std::mutex engine_mu_;
  SyncEngine engine_;
  std::unordered_map<std::uint64_t, PendingPull> pending_;
  std::vector<SeqWindow> push_seen_;           // per worker (reliable mode)
  std::unordered_set<std::uint64_t> answered_; // recently answered pull ids
  std::deque<std::uint64_t> answered_fifo_;    // eviction order for answered_
  std::vector<std::int64_t> recover_base_;     // per worker: last counted push at restore
  std::vector<std::int64_t> synth_floor_;      // per worker: progress covered by synthesis
  std::unordered_set<std::uint32_t> awaiting_recover_;
  net::Transport& transport_;

  // Counters mutated outside any single lock (TCP handlers run concurrently).
  std::atomic<std::int64_t> pushes_applied_{0};
  std::atomic<std::int64_t> pulls_answered_{0};
  std::atomic<std::int64_t> bounded_reads_{0};
  std::int64_t dedup_hits_ = 0;   // under engine_mu_
  std::int64_t recoveries_ = 0;   // under engine_mu_

  // Chain replication (all under engine_mu_). The log holds applied-but-
  // unacked entries; worker acks deferred onto them are released by
  // on_replicate_ack as the horizon advances.
  net::NodeId replica_successor_;
  replica::ReplicationLog repl_log_;
  std::int64_t replica_forwards_ = 0;
  std::int64_t repl_repairs_ = 0;
  std::int64_t stale_replicates_ = 0;
  std::int64_t synth_replayed_ = 0;
  bool promoted_ = false;

  // Elastic live migration (DESIGN.md §14). Both directions' bookkeeping is
  // under engine_mu_; applies_inflight_ closes the snapshot-vs-apply race:
  // on_push increments it inside the engine_mu_ accept section and
  // decrements after the (lock-free) apply landed, so migrate_out_begin can
  // hold engine_mu_ (blocking new accepts) and wait for the counter to reach
  // zero before snapshotting — every accepted-but-unapplied push settles
  // first, every later push hits the registered tap.
  struct MigrationOut {
    std::uint64_t id = 0;
    ParamSlice slice;
    std::size_t pos = 0;  ///< offset of the slice within this shard's payload
    net::NodeId target = 0;
    std::uint32_t target_rank = 0;
    replica::ReplicationLog log;  ///< tapped deltas awaiting the ack horizon
    bool snapshot_acked = false;
  };
  struct MigrationIn {
    net::NodeId source = 0;
    std::size_t slice_offset = 0;  ///< model offset, matched at commit
    std::vector<float> staged;     ///< snapshot + contiguously applied deltas
    std::uint64_t applied_lsn = 0;
    bool have_snapshot = false;
    std::map<std::uint64_t, std::vector<float>> stash;  ///< out-of-order deltas
  };
  std::vector<MigrationOut> migrations_out_;
  std::map<std::uint64_t, MigrationIn> migrations_in_;
  std::atomic<int> applies_inflight_{0};
  std::atomic<std::int64_t> migrate_bytes_{0};
  std::int64_t migrate_deltas_ = 0;  // under engine_mu_

  // Telemetry (DESIGN.md §12). Instrument handles are cached once at
  // construction so hot-path recording is a relaxed atomic RMW with no name
  // lookup; all are nullptr when telemetry is off.
  obs::Telemetry* telemetry_;
  obs::Histogram* enqueue_to_drain_hist_ = nullptr;  // server.enqueue_to_drain_ns
  obs::Histogram* apply_ns_hist_ = nullptr;          // server.apply_ns

  /// Open "replicate" span per pending log entry: started at the kReplicate
  /// forward, closed when on_replicate_ack trims the lsn (under engine_mu_).
  struct ReplSpanCtx {
    std::uint64_t trace_id = 0;
    std::uint32_t span_id = 0;
    std::uint32_t parent_id = 0;
    std::uint64_t start_ns = 0;
  };
  std::unordered_map<std::uint64_t, ReplSpanCtx> repl_spans_;  // lsn -> ctx
};

}  // namespace fluentps::ps
