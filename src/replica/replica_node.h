// A non-head member of a shard's replication chain (DESIGN.md §9).
//
// Receives kReplicate from its predecessor, applies entries strictly in lsn
// order through the same StripedShard::apply_batch sweep the head uses (same
// elementwise `w += scale * g`, so the replicated shard stays bit-identical
// to the head's), mirrors the head's per-worker SeqWindow dedup state, and
// either forwards downstream (middle, keeping its own pending log) or
// acknowledges upstream (tail). Acks are cumulative: kReplicateAck(h) means
// every lsn <= h reached the tail.
//
// Loss healing rides on the worker retry ladder, not on chain timers: when a
// kReplicate is retransmitted for an lsn this node already delivered, the
// node re-forwards it if the entry is still pending below (the downstream
// copy may be the one that was lost) and re-acks upstream once it was
// trimmed (the upstream ack may be the one that was lost).
//
// Bounded reads (DESIGN.md §13): the node also answers kPull requests whose
// staleness bound (ps/read_options.h, carried in `seq`) is covered by its
// applied horizon — the minimum over workers of the last progress it has
// applied, i.e. the oldest state any training stream could still be missing
// here. Satisfiable reads get a kPullResp marked replica-served (seq == 1,
// `progress` = the horizon); unsatisfiable ones get a control-sized
// kPullRedirect so the client retries the same ticket at the head. Reads are
// idempotent snapshots, so duplicates are *re-answered* (a retransmit means
// the previous response was lost); the per-requester SeqWindow only counts
// them for the `reads_deduped` metric.
//
// Threading: handle()/release_state() are not internally synchronized — the
// sim backend is single-context and the thread backend serializes both
// through the runtime's per-chain-slot mutex (promotion runs on the chaos
// thread while dispatch keeps delivering).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "net/message.h"
#include "net/transport.h"
#include "obs/telemetry.h"
#include "ps/seq_window.h"
#include "ps/striped_shard.h"
#include "replica/replication_log.h"

namespace fluentps::replica {

struct ReplicaSpec {
  net::NodeId node_id = 0;
  std::uint32_t server_rank = 0;   ///< shard this chain replicates
  std::uint32_t chain_pos = 1;     ///< position in the chain (1..r-1)
  std::uint32_t num_workers = 0;
  std::vector<float> initial_shard;  ///< must equal the head's initial shard
  net::NodeId successor = 0;         ///< next chain node; 0 = tail
  float apply_scale = 1.0f;          ///< 1/N, identical to the head's apply
  /// Modeled per-read service cost (threads backend): sleep this long before
  /// answering a served bounded read — mirrors ServerSpec::read_serve_seconds
  /// so head and replicas charge the same per-read cost. 0 = memcpy speed.
  double read_serve_seconds = 0.0;
  obs::Telemetry* telemetry = nullptr;  ///< span tracing (DESIGN.md §12)
};

class ReplicaNode {
 public:
  ReplicaNode(ReplicaSpec spec, net::Transport& transport);

  ReplicaNode(const ReplicaNode&) = delete;
  ReplicaNode& operator=(const ReplicaNode&) = delete;

  /// Transport handler; register with transport.register_node(node_id, ...).
  void handle(net::Message&& msg);

  /// Promotion handoff: moves the replicated shard, dedup windows, progress
  /// vector and pending log out (the node stays alive but inert; its
  /// dispatch slot is rebound to the promoted server by the runtime).
  [[nodiscard]] ReplicaState release_state();

  /// Elastic epoch fence (DESIGN.md §14): reseed this replica from its head's
  /// exported state after a layout commit — the migrated shard values, the
  /// head's dedup windows and per-worker progress, and the lsn position of
  /// the head's (empty, drained) log. Clears any stale pending/stashed
  /// entries and un-releases the node, so a previously drained slot's chain
  /// comes back live. Caller guarantees fence quiescence.
  void adopt_seed(const ReplicaState& state);

  [[nodiscard]] net::NodeId node_id() const noexcept { return node_id_; }
  [[nodiscard]] std::uint32_t rank() const noexcept { return server_rank_; }
  [[nodiscard]] std::uint32_t chain_pos() const noexcept { return chain_pos_; }

  /// Entries applied to the replicated shard (fresh, value-carrying).
  [[nodiscard]] std::int64_t applied() const noexcept { return applied_; }
  /// Entries forwarded downstream (middle nodes only).
  [[nodiscard]] std::int64_t forwarded() const noexcept { return forwarded_; }
  /// Duplicate lsns dropped (retransmit/replay traffic).
  [[nodiscard]] std::int64_t dup_drops() const noexcept { return dup_drops_; }
  /// Re-forwards triggered by duplicates of still-pending entries (healing).
  [[nodiscard]] std::int64_t reforwards() const noexcept { return reforwards_; }
  /// Bounded kPull requests this node answered itself (DESIGN.md §13).
  [[nodiscard]] std::int64_t reads_served() const noexcept { return reads_served_; }
  /// Bounded kPull requests redirected to the head (bound unsatisfiable).
  [[nodiscard]] std::int64_t read_fallbacks() const noexcept { return read_fallbacks_; }
  /// Duplicate read tickets re-answered (lost-response retransmits).
  [[nodiscard]] std::int64_t reads_deduped() const noexcept { return reads_deduped_; }
  /// The applied horizon bounded reads are checked against: min over workers
  /// of the last progress applied here (-1 until every worker has pushed).
  [[nodiscard]] std::int64_t read_horizon() const noexcept;
  /// Next lsn this node expects from upstream.
  [[nodiscard]] std::uint64_t next_lsn() const noexcept { return next_lsn_; }
  /// Out-of-order entries currently parked (reordered fabric).
  [[nodiscard]] std::size_t stashed() const noexcept { return stash_.size(); }

  /// Bitwise snapshot of the replicated shard (tests).
  [[nodiscard]] std::vector<float> snapshot() const { return shard_.snapshot(); }

 private:
  /// Apply the in-order entry `msg.request_id == next_lsn_` and pass it on.
  void deliver(net::Message&& msg);
  void forward(const LogEntry& e);
  void ack_upstream(net::NodeId dst, std::uint64_t lsn);
  /// Bounded-read path: serve from the replicated shard or redirect to head.
  void on_read(net::Message&& msg);

  net::NodeId node_id_;
  std::uint32_t server_rank_;
  std::uint32_t chain_pos_;
  net::NodeId successor_;
  float apply_scale_;
  double read_serve_seconds_;
  net::Transport& transport_;
  obs::Telemetry* telemetry_;

  // Single stripe: lsn-ordered applies are already serial, and one stripe
  // guarantees the identical axpy sweep order as the head's (bit-identity).
  ps::StripedShard shard_;
  std::vector<ps::SeqWindow> windows_;     // per worker, mirrors the head
  std::vector<std::int64_t> last_push_;    // per worker, -1 = none
  ReplicationLog log_;                     // middle nodes: pending downstream
  std::uint64_t next_lsn_ = 1;
  std::map<std::uint64_t, net::Message> stash_;  // out-of-order arrivals
  bool released_ = false;

  std::int64_t applied_ = 0;
  std::int64_t forwarded_ = 0;
  std::int64_t dup_drops_ = 0;
  std::int64_t reforwards_ = 0;

  // Bounded-read state (DESIGN.md §13). The windows only *count* duplicates;
  // reads are idempotent and always re-answered.
  std::map<std::uint32_t, ps::SeqWindow> read_windows_;  // per requester rank
  std::int64_t reads_served_ = 0;
  std::int64_t read_fallbacks_ = 0;
  std::int64_t reads_deduped_ = 0;
  obs::Counter* reads_served_counter_ = nullptr;
  obs::Counter* read_fallbacks_counter_ = nullptr;
};

}  // namespace fluentps::replica
