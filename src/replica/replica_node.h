// A non-head member of a shard's replication chain (DESIGN.md §9).
//
// Receives kReplicate from its predecessor, applies entries strictly in lsn
// order through the same StripedShard::apply_batch sweep the head uses (same
// elementwise `w += scale * g`, so the replicated shard stays bit-identical
// to the head's), mirrors the head's per-worker SeqWindow dedup state, and
// either forwards downstream (middle, keeping its own pending log) or
// acknowledges upstream (tail). Acks are cumulative: kReplicateAck(h) means
// every lsn <= h reached the tail.
//
// Loss healing rides on the worker retry ladder, not on chain timers: when a
// kReplicate is retransmitted for an lsn this node already delivered, the
// node re-forwards it if the entry is still pending below (the downstream
// copy may be the one that was lost) and re-acks upstream once it was
// trimmed (the upstream ack may be the one that was lost).
//
// Threading: handle()/release_state() are not internally synchronized — the
// sim backend is single-context and the thread backend serializes both
// through the runtime's per-chain-slot mutex (promotion runs on the chaos
// thread while dispatch keeps delivering).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "net/message.h"
#include "net/transport.h"
#include "obs/telemetry.h"
#include "ps/seq_window.h"
#include "ps/striped_shard.h"
#include "replica/replication_log.h"

namespace fluentps::replica {

struct ReplicaSpec {
  net::NodeId node_id = 0;
  std::uint32_t server_rank = 0;   ///< shard this chain replicates
  std::uint32_t chain_pos = 1;     ///< position in the chain (1..r-1)
  std::uint32_t num_workers = 0;
  std::vector<float> initial_shard;  ///< must equal the head's initial shard
  net::NodeId successor = 0;         ///< next chain node; 0 = tail
  float apply_scale = 1.0f;          ///< 1/N, identical to the head's apply
  obs::Telemetry* telemetry = nullptr;  ///< span tracing (DESIGN.md §12)
};

class ReplicaNode {
 public:
  ReplicaNode(ReplicaSpec spec, net::Transport& transport);

  ReplicaNode(const ReplicaNode&) = delete;
  ReplicaNode& operator=(const ReplicaNode&) = delete;

  /// Transport handler; register with transport.register_node(node_id, ...).
  void handle(net::Message&& msg);

  /// Promotion handoff: moves the replicated shard, dedup windows, progress
  /// vector and pending log out (the node stays alive but inert; its
  /// dispatch slot is rebound to the promoted server by the runtime).
  [[nodiscard]] ReplicaState release_state();

  [[nodiscard]] net::NodeId node_id() const noexcept { return node_id_; }
  [[nodiscard]] std::uint32_t rank() const noexcept { return server_rank_; }
  [[nodiscard]] std::uint32_t chain_pos() const noexcept { return chain_pos_; }

  /// Entries applied to the replicated shard (fresh, value-carrying).
  [[nodiscard]] std::int64_t applied() const noexcept { return applied_; }
  /// Entries forwarded downstream (middle nodes only).
  [[nodiscard]] std::int64_t forwarded() const noexcept { return forwarded_; }
  /// Duplicate lsns dropped (retransmit/replay traffic).
  [[nodiscard]] std::int64_t dup_drops() const noexcept { return dup_drops_; }
  /// Re-forwards triggered by duplicates of still-pending entries (healing).
  [[nodiscard]] std::int64_t reforwards() const noexcept { return reforwards_; }
  /// Next lsn this node expects from upstream.
  [[nodiscard]] std::uint64_t next_lsn() const noexcept { return next_lsn_; }
  /// Out-of-order entries currently parked (reordered fabric).
  [[nodiscard]] std::size_t stashed() const noexcept { return stash_.size(); }

  /// Bitwise snapshot of the replicated shard (tests).
  [[nodiscard]] std::vector<float> snapshot() const { return shard_.snapshot(); }

 private:
  /// Apply the in-order entry `msg.request_id == next_lsn_` and pass it on.
  void deliver(net::Message&& msg);
  void forward(const LogEntry& e);
  void ack_upstream(net::NodeId dst, std::uint64_t lsn);

  net::NodeId node_id_;
  std::uint32_t server_rank_;
  std::uint32_t chain_pos_;
  net::NodeId successor_;
  float apply_scale_;
  net::Transport& transport_;
  obs::Telemetry* telemetry_;

  // Single stripe: lsn-ordered applies are already serial, and one stripe
  // guarantees the identical axpy sweep order as the head's (bit-identity).
  ps::StripedShard shard_;
  std::vector<ps::SeqWindow> windows_;     // per worker, mirrors the head
  std::vector<std::int64_t> last_push_;    // per worker, -1 = none
  ReplicationLog log_;                     // middle nodes: pending downstream
  std::uint64_t next_lsn_ = 1;
  std::map<std::uint64_t, net::Message> stash_;  // out-of-order arrivals
  bool released_ = false;

  std::int64_t applied_ = 0;
  std::int64_t forwarded_ = 0;
  std::int64_t dup_drops_ = 0;
  std::int64_t reforwards_ = 0;
};

}  // namespace fluentps::replica
