#include "replica/replica_node.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "obs/span.h"
#include "ps/read_options.h"

namespace fluentps::replica {

ReplicaNode::ReplicaNode(ReplicaSpec spec, net::Transport& transport)
    : node_id_(spec.node_id),
      server_rank_(spec.server_rank),
      chain_pos_(spec.chain_pos),
      successor_(spec.successor),
      apply_scale_(spec.apply_scale),
      read_serve_seconds_(spec.read_serve_seconds),
      transport_(transport),
      telemetry_(spec.telemetry),
      shard_(std::move(spec.initial_shard), /*num_stripes=*/1),
      windows_(spec.num_workers),
      last_push_(spec.num_workers, -1) {
  FPS_CHECK(chain_pos_ >= 1) << "chain position 0 is the head, not a replica";
  if (telemetry_ != nullptr && telemetry_->registry != nullptr) {
    reads_served_counter_ = &telemetry_->registry->counter("replica.reads_served");
    read_fallbacks_counter_ = &telemetry_->registry->counter("replica.read_fallbacks");
  }
}

void ReplicaNode::handle(net::Message&& msg) {
  if (released_) return;  // promoted away; the slot now routes to a Server
  switch (msg.type) {
    case net::MsgType::kReplicate: {
      const std::uint64_t lsn = msg.request_id;
      if (lsn < next_lsn_) {
        // Duplicate: upstream retransmitted (worker retry reached the head
        // again, or a fault duplicated the frame). If the entry is still
        // pending here the loss may have been *below* us — re-forward it.
        // If it was trimmed, the tail already saw it — re-ack upstream so a
        // lost ack heals too. Either way the apply is skipped (exactly-once).
        ++dup_drops_;
        if (LogEntry* e = log_.find_lsn(lsn)) {
          ++reforwards_;
          forward(*e);
        } else {
          ack_upstream(msg.src, lsn);
        }
        return;
      }
      if (lsn > next_lsn_) {
        // Out of order (reordering fault): park until the gap fills. The
        // frame may borrow transport-owned bytes — take ownership first.
        msg.values.ensure_owned();
        stash_.insert_or_assign(lsn, std::move(msg));
        return;
      }
      deliver(std::move(msg));
      // Drain any stashed entries that are now contiguous.
      for (auto it = stash_.begin(); it != stash_.end() && it->first == next_lsn_;) {
        net::Message parked = std::move(it->second);
        it = stash_.erase(it);
        deliver(std::move(parked));
      }
      return;
    }
    case net::MsgType::kReplicateAck: {
      // Cumulative horizon from our successor: trim and propagate upstream.
      // Group per upstream node so a burst of trims costs one ack each.
      std::map<net::NodeId, std::uint64_t> horizons;
      log_.trim_to(msg.request_id, [&](const LogEntry& e) {
        std::uint64_t& h = horizons[e.upstream];
        h = std::max(h, e.lsn);
      });
      for (const auto& [dst, h] : horizons) ack_upstream(dst, h);
      return;
    }
    case net::MsgType::kPull:
      on_read(std::move(msg));
      return;
    case net::MsgType::kShutdown:
      return;
    default:
      FPS_LOG(Warn) << "replica " << node_id_ << " ignoring " << net::to_string(msg.type);
      return;
  }
}

std::int64_t ReplicaNode::read_horizon() const noexcept {
  // The slowest worker's applied progress: anything at or below it has been
  // folded into the replicated shard for *every* training stream, so serving
  // at horizon h is exactly as fresh as a head snapshot taken at clock h.
  std::int64_t h = std::numeric_limits<std::int64_t>::max();
  for (const std::int64_t p : last_push_) h = std::min(h, p);
  return last_push_.empty() ? -1 : h;
}

void ReplicaNode::on_read(net::Message&& msg) {
  const std::int64_t h = read_horizon();
  // Strong reads (seq == 0) never route here; if one arrives anyway the safe
  // answer is a redirect — only the head's engine may gate strong pulls.
  const bool satisfiable =
      ps::is_bounded_read(msg.seq) && h + ps::decode_read_bound(msg.seq) >= msg.progress;
  if (!satisfiable) {
    ++read_fallbacks_;
    if (read_fallbacks_counter_ != nullptr) read_fallbacks_counter_->add();
    net::Message rd;
    rd.type = net::MsgType::kPullRedirect;
    rd.src = node_id_;
    rd.dst = msg.src;
    rd.request_id = msg.request_id;
    rd.progress = h;  // how far behind we were — diagnostic for the client
    rd.worker_rank = msg.worker_rank;
    rd.server_rank = server_rank_;
    transport_.send(std::move(rd));
    return;
  }

  // Dedup is accounting-only: a duplicate ticket means our previous response
  // was lost, so the only useful action is answering again (idempotent).
  if (!read_windows_[msg.worker_rank].accept(msg.request_id)) ++reads_deduped_;

  if (read_serve_seconds_ > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(read_serve_seconds_));
  }

  obs::SpanRecorder* spans =
      (telemetry_ != nullptr && msg.trace_id != 0) ? telemetry_->spans : nullptr;
  std::uint32_t read_span = 0;
  std::uint64_t t0 = 0;
  if (spans != nullptr) {
    read_span = spans->next_span_id();
    t0 = obs::now_ns();
  }

  net::Message resp;
  resp.type = net::MsgType::kPullResp;
  resp.src = node_id_;
  resp.dst = msg.src;
  resp.request_id = msg.request_id;
  resp.seq = ps::kReplicaServedSeq;  // the client's staleness oracle keys on this
  resp.progress = h;                 // serving horizon, echoed for the oracle
  resp.worker_rank = msg.worker_rank;
  resp.server_rank = server_rank_;
  shard_.copy_out(resp.values.mutable_span_resized(shard_.size()));
  resp.trace_id = spans != nullptr ? msg.trace_id : 0;
  resp.span_id = read_span;
  transport_.send(std::move(resp));
  ++reads_served_;
  if (reads_served_counter_ != nullptr) reads_served_counter_->add();
  if (spans != nullptr) {
    spans->emit(msg.trace_id, read_span, msg.span_id, "replica.read", node_id_, t0,
                obs::now_ns());
  }
}

void ReplicaNode::deliver(net::Message&& msg) {
  const std::uint64_t lsn = msg.request_id;
  const std::uint32_t w = msg.worker_rank;
  FPS_CHECK(w < windows_.size()) << "replicate from out-of-range worker " << w;

  // Span tracing: "replica.apply" parents on the upstream hop carried in the
  // frame (the head's replicate span, or the previous replica's apply span).
  obs::SpanRecorder* spans = (telemetry_ != nullptr && msg.trace_id != 0)
                                 ? telemetry_->spans
                                 : nullptr;
  std::uint32_t apply_span = 0;
  std::uint64_t t0 = 0;
  if (spans != nullptr) {
    apply_span = spans->next_span_id();
    t0 = obs::now_ns();
  }

  // Mirror the head's dedup decision. The head only replicates pushes its own
  // window accepted, so `fresh` is true here for everything except entries
  // re-delivered across a promote replay — where skipping is exactly right.
  const bool fresh = windows_[w].accept(msg.seq);
  if (fresh && !msg.values.empty()) {
    const std::span<const float> g = msg.values.span();
    FPS_CHECK(g.size() == shard_.size())
        << "replicate size " << g.size() << " != shard " << shard_.size();
    const std::span<const float> one[] = {g};
    shard_.apply_batch(one, apply_scale_);
    ++applied_;
  }
  if (fresh) last_push_[w] = std::max(last_push_[w], msg.progress);
  next_lsn_ = lsn + 1;
  if (spans != nullptr) {
    spans->emit(msg.trace_id, apply_span, msg.span_id, "replica.apply", node_id_, t0,
                obs::now_ns());
  }

  if (successor_ != 0) {
    LogEntry e;
    e.lsn = lsn;
    e.worker_rank = w;
    e.seq = msg.seq;
    e.progress = msg.progress;
    e.values.assign(msg.values.begin(), msg.values.end());
    e.upstream = msg.src;
    e.trace_id = spans != nullptr ? msg.trace_id : 0;
    e.span_id = apply_span;
    forward(log_.insert(std::move(e)));
    ++forwarded_;
  } else {
    // Tail: the lsn stream is contiguous here, so acking this lsn is a valid
    // cumulative horizon. The "tail.ack" instant marks the moment the update
    // became durable across the whole chain.
    ack_upstream(msg.src, lsn);
    if (spans != nullptr) {
      spans->emit_instant(msg.trace_id, spans->next_span_id(), apply_span, "tail.ack",
                          node_id_, obs::now_ns());
    }
  }
}

void ReplicaNode::forward(const LogEntry& e) {
  net::Message fwd;
  fwd.type = net::MsgType::kReplicate;
  fwd.src = node_id_;
  fwd.dst = successor_;
  fwd.request_id = e.lsn;
  fwd.seq = e.seq;
  fwd.progress = e.progress;
  fwd.worker_rank = e.worker_rank;
  fwd.server_rank = server_rank_;
  fwd.trace_id = e.trace_id;
  fwd.span_id = e.span_id;
  if (transport_.inline_delivery()) {
    // Zero-copy: the bytes are consumed inside send(), and the log entry
    // cannot be trimmed before then (trimming requires the tail ack this
    // very delivery enables).
    fwd.values = net::Payload::borrow(e.values);
  } else {
    fwd.values.assign(e.values.begin(), e.values.end());
  }
  transport_.send(std::move(fwd));
}

void ReplicaNode::ack_upstream(net::NodeId dst, std::uint64_t lsn) {
  net::Message ack;
  ack.type = net::MsgType::kReplicateAck;
  ack.src = node_id_;
  ack.dst = dst;
  ack.request_id = lsn;
  ack.server_rank = server_rank_;
  transport_.send(std::move(ack));
}

ReplicaState ReplicaNode::release_state() {
  FPS_CHECK(!released_) << "replica " << node_id_ << " released twice";
  released_ = true;
  ReplicaState s;
  s.shard = shard_.snapshot();
  s.windows = std::move(windows_);
  s.last_push = std::move(last_push_);
  if (successor_ == 0) log_.set_next_lsn(next_lsn_);
  s.log = std::move(log_);
  stash_.clear();
  return s;
}

void ReplicaNode::adopt_seed(const ReplicaState& state) {
  shard_.reconfigure(state.shard, {});
  windows_ = state.windows;
  last_push_ = state.last_push;
  log_.pending().clear();
  log_.set_next_lsn(state.log.next_lsn());
  next_lsn_ = state.log.next_lsn();
  stash_.clear();
  released_ = false;
}

}  // namespace fluentps::replica
