// Per-shard log of applied-but-unacknowledged updates for chain replication
// (DESIGN.md §9).
//
// The chain head appends every fresh push it applies, stamped with a dense
// log sequence number (lsn), and forwards it as kReplicate; middle nodes
// insert the same entries under the head's lsn. Entries are trimmed when the
// *ack horizon* advances — a cumulative kReplicateAck(h) from the successor
// means every lsn <= h reached the tail, so the entries (and the worker push
// acks the head deferred onto them) can be released. The log is therefore
// bounded by the ack horizon: with one outstanding push round per worker
// (the reliability layer's invariant) at most num_workers entries are ever
// pending per shard, plus whatever the chain RTT keeps in flight.
//
// Header-only on purpose: ps::Server holds a ReplicationLog (deferring acks
// onto entries) while replica::ReplicaNode links against fluentps_ps for
// SeqWindow/StripedShard — a compiled replica->ps->replica cycle would not
// link, but headers compose fine.
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "common/logging.h"
#include "net/message.h"
#include "ps/seq_window.h"

namespace fluentps::replica {

/// A worker push ack the head owes but withholds until the entry's lsn is
/// chain-replicated (zero-loss: a worker holding an ack for an update the
/// failover lost would never retransmit it).
struct DeferredAck {
  net::NodeId dst = 0;
  std::uint64_t request_id = 0;
  std::uint64_t seq = 0;
  std::int64_t progress = 0;
  std::uint32_t worker_rank = 0;
};

struct LogEntry {
  std::uint64_t lsn = 0;
  std::uint32_t worker_rank = 0;
  std::uint64_t seq = 0;         ///< the original push's sequence number
  std::int64_t progress = 0;
  std::vector<float> values;     ///< owned copy; empty = metadata-only push
  net::NodeId upstream = 0;      ///< chain nodes: where to ack once trimmed
  std::vector<DeferredAck> acks; ///< head: worker acks deferred to the horizon
  std::uint64_t trace_id = 0;    ///< span tracing (DESIGN.md §12); 0 = untraced
  std::uint32_t span_id = 0;     ///< parent span for the downstream hop
};

class ReplicationLog {
 public:
  /// Head append: assigns the next lsn. The values are copied — the log must
  /// own them because fault injection (dup/delay) can deliver a forwarded
  /// frame after the borrowed source is gone.
  LogEntry& append(std::uint32_t worker_rank, std::uint64_t seq, std::int64_t progress,
                   std::span<const float> values) {
    LogEntry e;
    e.lsn = next_lsn_++;
    e.worker_rank = worker_rank;
    e.seq = seq;
    e.progress = progress;
    e.values.assign(values.begin(), values.end());
    pending_.push_back(std::move(e));
    high_water_ = std::max(high_water_, pending_.size());
    return pending_.back();
  }

  /// Replica insert: entries arrive in lsn order from upstream and keep the
  /// head's numbering.
  LogEntry& insert(LogEntry&& e) {
    FPS_CHECK(e.lsn == next_lsn_) << "replication log gap: lsn " << e.lsn << " expected "
                                  << next_lsn_;
    next_lsn_ = e.lsn + 1;
    pending_.push_back(std::move(e));
    high_water_ = std::max(high_water_, pending_.size());
    return pending_.back();
  }

  /// Pending entry for a (worker, seq) retransmit, or nullptr if trimmed.
  [[nodiscard]] LogEntry* find(std::uint32_t worker_rank, std::uint64_t seq) {
    for (LogEntry& e : pending_) {
      if (e.worker_rank == worker_rank && e.seq == seq) return &e;
    }
    return nullptr;
  }

  [[nodiscard]] LogEntry* find_lsn(std::uint64_t lsn) {
    for (LogEntry& e : pending_) {
      if (e.lsn == lsn) return &e;
    }
    return nullptr;
  }

  /// Advance the ack horizon to `h` (cumulative): trims every entry with
  /// lsn <= h, invoking `sink(LogEntry&)` on each before it is dropped.
  template <typename F>
  void trim_to(std::uint64_t h, F&& sink) {
    while (!pending_.empty() && pending_.front().lsn <= h) {
      sink(pending_.front());
      pending_.pop_front();
    }
    horizon_ = std::max(horizon_, h);
  }

  [[nodiscard]] const std::deque<LogEntry>& pending() const noexcept { return pending_; }
  [[nodiscard]] std::deque<LogEntry>& pending() noexcept { return pending_; }
  [[nodiscard]] std::size_t size() const noexcept { return pending_.size(); }
  [[nodiscard]] bool empty() const noexcept { return pending_.empty(); }
  /// Next lsn append() would assign (== highest seen + 1 on replicas).
  [[nodiscard]] std::uint64_t next_lsn() const noexcept { return next_lsn_; }
  [[nodiscard]] std::uint64_t horizon() const noexcept { return horizon_; }
  /// Largest pending count ever observed — the measured replication lag bound.
  [[nodiscard]] std::size_t high_water() const noexcept { return high_water_; }

  /// Tail replicas keep no entries but still track the lsn stream; promotion
  /// hands the position to the new head through here.
  void set_next_lsn(std::uint64_t lsn) noexcept { next_lsn_ = lsn; }

 private:
  std::deque<LogEntry> pending_;
  std::uint64_t next_lsn_ = 1;
  std::uint64_t horizon_ = 0;
  std::size_t high_water_ = 0;
};

/// Everything a successor hands to the server promoted in its place: the
/// replicated shard values, the mirrored per-worker dedup windows (exactly-
/// once across the failover), each worker's last replicated push progress
/// (sync-engine progress reconciliation), and its own pending log (replayed
/// downstream when the new head has a successor).
struct ReplicaState {
  std::vector<float> shard;
  std::vector<ps::SeqWindow> windows;
  std::vector<std::int64_t> last_push;
  ReplicationLog log;
};

}  // namespace fluentps::replica
