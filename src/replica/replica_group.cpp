#include "replica/replica_group.h"

#include "common/logging.h"

namespace fluentps::replica {

net::NodeId ChainLayout::node_of(std::uint32_t m, std::uint32_t pos) const {
  FPS_CHECK(m < num_servers) << "shard rank out of range: " << m;
  FPS_CHECK(pos < factor) << "chain position " << pos << " out of range for r=" << factor;
  if (pos == 0) return 1 + m;  // the plain server node id (runtime layout)
  return 1 + num_servers + num_workers + m * (factor - 1) + (pos - 1);
}

net::NodeId ChainLayout::successor_of(std::uint32_t m, std::uint32_t pos) const {
  FPS_CHECK(pos < factor) << "chain position " << pos << " out of range for r=" << factor;
  return pos + 1 < factor ? node_of(m, pos + 1) : 0;
}

ReplicaGroup::ReplicaGroup(ChainLayout layout)
    : layout_(layout), head_pos_(layout.num_servers, 0) {
  FPS_CHECK(layout_.num_servers > 0 && layout_.factor >= 1) << "empty replica group";
}

std::uint32_t ReplicaGroup::head_pos(std::uint32_t m) const {
  FPS_CHECK(m < head_pos_.size()) << "shard rank out of range: " << m;
  return head_pos_[m];
}

net::NodeId ReplicaGroup::head_node(std::uint32_t m) const {
  return layout_.node_of(m, head_pos(m));
}

bool ReplicaGroup::exhausted(std::uint32_t m) const {
  return head_pos(m) + 1 >= layout_.factor;
}

std::uint32_t ReplicaGroup::promote(std::uint32_t m) {
  FPS_CHECK(!exhausted(m)) << "shard " << m << " chain exhausted: no successor to promote";
  return ++head_pos_[m];
}

}  // namespace fluentps::replica
