// Chain membership for replicated server shards (DESIGN.md §9).
//
// ChainLayout is the static node-id geometry: every shard m gets a chain of
// `factor` server nodes — position 0 is the original head (the plain server
// node id), positions 1..factor-1 are replica nodes appended after the
// workers in the global id space, so existing scheduler/server/worker ids
// are untouched by turning replication on.
//
// ReplicaGroup layers the dynamic view on top: which position currently
// serves as head for each shard. promote() advances it after a head crash;
// membership itself is static (crashed nodes are not re-admitted — chain
// repair is future work, see ROADMAP).
#pragma once

#include <cstdint>
#include <vector>

#include "net/message.h"

namespace fluentps::replica {

struct ChainLayout {
  std::uint32_t num_servers = 0;
  std::uint32_t num_workers = 0;
  std::uint32_t factor = 1;  ///< r: chain length per shard (1 = no replication)

  /// Node id of chain position `pos` (0 = original head) of shard m.
  [[nodiscard]] net::NodeId node_of(std::uint32_t m, std::uint32_t pos) const;

  /// Successor of position `pos` in shard m's chain; 0 when pos is the tail.
  [[nodiscard]] net::NodeId successor_of(std::uint32_t m, std::uint32_t pos) const;

  /// Total node count including scheduler, servers, workers and replicas —
  /// what the sim network model must be sized for.
  [[nodiscard]] std::uint32_t total_nodes() const noexcept {
    return 1 + num_servers + num_workers + num_servers * (factor - 1);
  }

  [[nodiscard]] bool replicated() const noexcept { return factor > 1; }
};

class ReplicaGroup {
 public:
  explicit ReplicaGroup(ChainLayout layout);

  [[nodiscard]] const ChainLayout& layout() const noexcept { return layout_; }

  /// Chain position currently acting as head for shard m.
  [[nodiscard]] std::uint32_t head_pos(std::uint32_t m) const;
  [[nodiscard]] net::NodeId head_node(std::uint32_t m) const;

  /// True when no successor remains to promote for shard m.
  [[nodiscard]] bool exhausted(std::uint32_t m) const;

  /// Advance shard m's head to its successor; returns the new head position.
  std::uint32_t promote(std::uint32_t m);

 private:
  ChainLayout layout_;
  std::vector<std::uint32_t> head_pos_;
};

}  // namespace fluentps::replica
