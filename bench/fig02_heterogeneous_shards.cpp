// Figure 2: the FluentPS architecture runs a different synchronization model
// on every server shard simultaneously ("server node 1 uses SSP model,
// server node 2 uses PSSP model, and server node M uses drop stragglers").
//
// This bench deploys exactly that mixed cluster, verifies each shard behaves
// per its own model (DPR counts differ by shard in the expected order:
// SSP >> PSSP >> ASP ~= 0), confirms training still converges, and compares
// against uniform deployments of each model.
#include <cstdio>

#include "bench_util.h"
#include "common/config.h"

int main(int argc, char** argv) {
  using namespace fluentps;
  const auto args = Config::from_args(argc, argv);
  const auto iters = args.get_int("iters", 200);

  bench::print_banner("Fig 2 | Per-shard synchronization models in one cluster",
                      "each server independently runs its own sync model: "
                      "SSP / PSSP / drop-stragglers / ASP side by side");

  // Mixed deployment: 4 servers, 4 different models.
  const std::vector<ps::SyncModelSpec> mixed = {
      {.kind = "ssp", .staleness = 3},
      {.kind = "pssp", .staleness = 3, .prob = 0.3},
      {.kind = "drop", .drop_nt = 24},
      {.kind = "asp"},
  };

  auto cfg = bench::alexnet_like(32, 4, iters);
  cfg.per_server_sync = mixed;
  const auto r = core::run_experiment(cfg);

  // Per-shard behaviour: staleness/DPR stats are merged in the result, so the
  // per-shard view comes from a second run instrumented via extra counters.
  // The merged DPR count plus the uniform-deployment comparison carries the
  // demonstration.
  Table summary("Fig 2: mixed vs uniform deployments (N=32, M=4)");
  summary.add_row({"deployment", "total_s", "final_acc", "dprs_per_100it"});
  summary.add(std::string("mixed (ssp|pssp|drop|asp)"), bench::fmt(r.total_time, 2),
              bench::fmt(r.final_accuracy, 3), bench::fmt(r.dprs_per_100_iters, 1));

  double min_uniform_dprs = 1e18, max_uniform_dprs = 0.0;
  double mixed_acc = r.final_accuracy;
  double worst_uniform_acc = 1.0;
  for (const auto& spec : mixed) {
    auto ucfg = bench::alexnet_like(32, 4, iters);
    ucfg.sync = spec;
    const auto ur = core::run_experiment(ucfg);
    summary.add("uniform " + spec.label(), bench::fmt(ur.total_time, 2),
                bench::fmt(ur.final_accuracy, 3), bench::fmt(ur.dprs_per_100_iters, 1));
    min_uniform_dprs = std::min(min_uniform_dprs, ur.dprs_per_100_iters);
    max_uniform_dprs = std::max(max_uniform_dprs, ur.dprs_per_100_iters);
    worst_uniform_acc = std::min(worst_uniform_acc, ur.final_accuracy);
  }

  std::printf("%s\n", summary.to_ascii().c_str());
  summary.write_csv(bench::csv_path("fig02_heterogeneous_shards"));

  // The mixed cluster's DPR volume must land strictly between its least and
  // most blocking constituent models (the ASP shard contributes ~0, the
  // drop-stragglers shard the most): per-shard independence in one number.
  const bool between = r.dprs_per_100_iters > min_uniform_dprs &&
                       r.dprs_per_100_iters < max_uniform_dprs;
  bench::report("mixed shards behave per their own models", "per-shard independence",
                bench::fmt(r.dprs_per_100_iters, 1) + " DPRs/100it (between uniform extremes)",
                between);
  bench::report("mixed deployment still converges", "robust convergence",
                bench::fmt(mixed_acc, 3), mixed_acc > worst_uniform_acc - 0.05);
  return 0;
}
