// Microbenchmarks (google-benchmark) for the hot paths: sync-engine request
// handling, GEMM kernels, message serialization, network-model updates, and
// slicing. These guard against performance regressions in the substrate.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "ml/models/resmlp.h"
#include "ml/ops.h"
#include "net/message.h"
#include "ps/slicing.h"
#include "ps/sync_engine.h"
#include "sim/network_model.h"
#include "sim/sim_env.h"

namespace {

using namespace fluentps;

void BM_SyncEnginePushPull(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  ps::SyncEngine::Spec spec;
  spec.num_workers = n;
  spec.mode = ps::DprMode::kLazy;
  spec.model = ps::make_sync_model({.kind = "ssp", .staleness = 3}, n);
  spec.seed = 1;
  ps::SyncEngine engine(std::move(spec));
  std::int64_t iter = 0;
  std::uint64_t req = 1;
  for (auto _ : state) {
    for (std::uint32_t w = 0; w < n; ++w) {
      benchmark::DoNotOptimize(engine.on_push(w, iter));
      benchmark::DoNotOptimize(engine.on_pull(w, iter, req++));
    }
    ++iter;
  }
  state.SetItemsProcessed(state.iterations() * n * 2);
}
BENCHMARK(BM_SyncEnginePushPull)->Arg(8)->Arg(64)->Arg(256);

void BM_GemmNn(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<float> A(n * n), B(n * n), C(n * n);
  for (auto& x : A) x = static_cast<float>(rng.normal());
  for (auto& x : B) x = static_cast<float>(rng.normal());
  for (auto _ : state) {
    ml::gemm_nn(n, n, n, 1.0f, A.data(), B.data(), 0.0f, C.data());
    benchmark::DoNotOptimize(C.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n * 2);
}
BENCHMARK(BM_GemmNn)->Arg(16)->Arg(64)->Arg(128);

void BM_ResMlpGrad(benchmark::State& state) {
  const ml::ResMlp model(64, 16, 27, 10);
  std::vector<float> w(model.num_params()), g(model.num_params());
  Rng rng(2);
  model.init_params(w, rng);
  std::vector<float> X(16 * 64);
  std::vector<int> y(16, 1);
  for (auto& x : X) x = static_cast<float>(rng.normal());
  const ml::Batch batch{X.data(), y.data(), 16, 64};
  ml::Workspace ws;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.grad(w, batch, g, ws));
  }
}
BENCHMARK(BM_ResMlpGrad);

void BM_MessageSerialize(benchmark::State& state) {
  net::Message m;
  m.type = net::MsgType::kPush;
  m.values.resize(static_cast<std::size_t>(state.range(0)), 1.5f);
  for (auto _ : state) {
    auto frame = m.serialize();
    benchmark::DoNotOptimize(frame.data());
    net::Message out;
    benchmark::DoNotOptimize(net::Message::deserialize(frame, &out));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(m.values.size() * sizeof(float)));
}
BENCHMARK(BM_MessageSerialize)->Arg(1024)->Arg(65536);

void BM_NetworkModelDeliver(benchmark::State& state) {
  sim::NetworkModel net(sim::NetworkSpec{}, 64);
  double now = 0.0;
  std::uint32_t src = 0;
  for (auto _ : state) {
    now = std::max(now, net.deliver(src, 63, 4096.0, now));
    src = (src + 1) % 63;
  }
  benchmark::DoNotOptimize(now);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetworkModelDeliver);

void BM_SimEnvScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::SimEnv env;
    for (int i = 0; i < 1000; ++i) {
      env.schedule(static_cast<double>(i % 13), [] {});
    }
    env.run();
    benchmark::DoNotOptimize(env.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimEnvScheduleRun);

void BM_EpsShard(benchmark::State& state) {
  const ml::ResMlp model(512, 32, 27, 100);
  const auto layers = model.layer_sizes();
  ps::EpsSlicer slicer(1024);
  for (auto _ : state) {
    auto sh = slicer.shard(layers, 16);
    benchmark::DoNotOptimize(sh.num_params);
  }
}
BENCHMARK(BM_EpsShard);

void BM_GatherScatter(benchmark::State& state) {
  ps::EpsSlicer slicer(1024);
  const auto sh = slicer.shard({262144}, 8);
  std::vector<float> flat(262144, 1.0f);
  std::vector<float> buf(sh.shards[0].total);
  for (auto _ : state) {
    sh.shards[0].gather(flat, buf);
    sh.shards[0].scatter(buf, flat);
    benchmark::DoNotOptimize(flat.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(2 * buf.size() * sizeof(float)));
}
BENCHMARK(BM_GatherScatter);

}  // namespace

BENCHMARK_MAIN();
