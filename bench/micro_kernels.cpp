// Microbenchmarks (google-benchmark) for the hot paths: sync-engine request
// handling, GEMM kernels, message serialization, network-model updates, and
// slicing. These guard against performance regressions in the substrate.
#include <benchmark/benchmark.h>

#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "common/rng.h"
#include "embed/embedding_table.h"
#include "embed/sparse_codec.h"
#include "embed/table_spec.h"
#include "ml/models/resmlp.h"
#include "ml/ops.h"
#include "net/frame_buffer.h"
#include "net/message.h"
#include "obs/telemetry.h"
#include "ps/push_combiner.h"
#include "ps/read_options.h"
#include "ps/slicing.h"
#include "ps/striped_shard.h"
#include "ps/sync_engine.h"
#include "replica/replica_node.h"
#include "replica/replication_log.h"
#include "sim/network_model.h"
#include "sim/sim_env.h"

namespace {

using namespace fluentps;

void BM_SyncEnginePushPull(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  ps::SyncEngine::Spec spec;
  spec.num_workers = n;
  spec.mode = ps::DprMode::kLazy;
  spec.model = ps::make_sync_model({.kind = "ssp", .staleness = 3}, n);
  spec.seed = 1;
  ps::SyncEngine engine(std::move(spec));
  std::int64_t iter = 0;
  std::uint64_t req = 1;
  for (auto _ : state) {
    for (std::uint32_t w = 0; w < n; ++w) {
      benchmark::DoNotOptimize(engine.on_push(w, iter));
      benchmark::DoNotOptimize(engine.on_pull(w, iter, req++));
    }
    ++iter;
  }
  state.SetItemsProcessed(state.iterations() * n * 2);
}
BENCHMARK(BM_SyncEnginePushPull)->Arg(8)->Arg(64)->Arg(256);

void BM_GemmNn(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<float> A(n * n), B(n * n), C(n * n);
  for (auto& x : A) x = static_cast<float>(rng.normal());
  for (auto& x : B) x = static_cast<float>(rng.normal());
  for (auto _ : state) {
    ml::gemm_nn(n, n, n, 1.0f, A.data(), B.data(), 0.0f, C.data());
    benchmark::DoNotOptimize(C.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n * 2);
}
BENCHMARK(BM_GemmNn)->Arg(16)->Arg(64)->Arg(128);

void BM_ResMlpGrad(benchmark::State& state) {
  const ml::ResMlp model(64, 16, 27, 10);
  std::vector<float> w(model.num_params()), g(model.num_params());
  Rng rng(2);
  model.init_params(w, rng);
  std::vector<float> X(16 * 64);
  std::vector<int> y(16, 1);
  for (auto& x : X) x = static_cast<float>(rng.normal());
  const ml::Batch batch{X.data(), y.data(), 16, 64};
  ml::Workspace ws;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.grad(w, batch, g, ws));
  }
}
BENCHMARK(BM_ResMlpGrad);

void BM_MessageSerialize(benchmark::State& state) {
  net::Message m;
  m.type = net::MsgType::kPush;
  m.values.resize(static_cast<std::size_t>(state.range(0)), 1.5f);
  for (auto _ : state) {
    auto frame = m.serialize();
    benchmark::DoNotOptimize(frame.data());
    net::Message out;
    benchmark::DoNotOptimize(net::Message::deserialize(frame, &out));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(m.values.size() * sizeof(float)));
}
BENCHMARK(BM_MessageSerialize)->Arg(1024)->Arg(8192)->Arg(65536);

void BM_MessageSerializeZeroCopy(benchmark::State& state) {
  // The TCP fast path: header into a reusable FrameBuffer (gather-write pairs
  // it with the payload span — no payload copy on send), then a borrowed-view
  // deserialize on the receive side (no payload copy on receive either).
  net::Message m;
  m.type = net::MsgType::kPush;
  m.values.resize(static_cast<std::size_t>(state.range(0)), 1.5f);
  net::FrameBuffer frame;
  for (auto _ : state) {
    auto bytes = m.serialize_into(frame);
    benchmark::DoNotOptimize(bytes.data());
    net::Message out;
    benchmark::DoNotOptimize(net::Message::deserialize_view(bytes, &out));
    benchmark::DoNotOptimize(out.values.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(m.values.size() * sizeof(float)));
}
BENCHMARK(BM_MessageSerializeZeroCopy)->Arg(1024)->Arg(8192)->Arg(65536);

void BM_ServerBatchedApply(benchmark::State& state) {
  // Flat-combining payoff: `n` concurrent pushes coalesced into one striped
  // sweep (batch path) vs applied one message at a time (per-message path).
  // range(0) = pushes coalesced per sweep, range(1) = 1 to batch, 0 to not.
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool batched = state.range(1) != 0;
  // 4 MiB of parameters — larger than L2, so the per-message path re-streams
  // the whole shard through the cache hierarchy once per push, while the
  // batch sweep touches each stripe once and keeps it cache-resident across
  // the entire batch.
  constexpr std::size_t kParams = std::size_t{1} << 20;
  constexpr std::size_t kSliceLen = 4096;
  std::vector<std::size_t> slices(kParams / kSliceLen, kSliceLen);
  Rng rng(7);
  std::vector<float> init(kParams);
  for (auto& x : init) x = static_cast<float>(rng.normal());
  ps::StripedShard shard(std::move(init), 8, slices);
  std::vector<std::vector<float>> grads(n, std::vector<float>(kParams, 0.001f));
  std::vector<std::span<const float>> spans;
  spans.reserve(n);
  for (const auto& g : grads) spans.emplace_back(g);
  const float scale = 1.0f / 64.0f;  // w += g / N at 64 workers
  for (auto _ : state) {
    if (batched) {
      shard.apply_batch(spans, scale);
    } else {
      for (const auto& s : spans) {
        shard.apply_batch(std::span<const std::span<const float>>(&s, 1), scale);
      }
    }
    benchmark::DoNotOptimize(shard);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(n * kParams * sizeof(float)));
}
BENCHMARK(BM_ServerBatchedApply)
    ->Args({8, 0})
    ->Args({8, 1})
    ->Args({64, 0})
    ->Args({64, 1});

void BM_CombinerHandoff(benchmark::State& state) {
  // The contended-apply micro (DESIGN.md §11): N threads hand gradients to
  // the combiner simultaneously. range(0) = 0 for the legacy mutex + condvar
  // flat combining, 1 for the lock-free MPSC ring handoff. Same shard, same
  // gradients — only the handoff mechanism differs.
  constexpr std::size_t kParams = 4096;
  static ps::StripedShard* shard = nullptr;
  static ps::PushCombiner* combiner = nullptr;
  if (state.thread_index() == 0) {
    shard = new ps::StripedShard(std::vector<float>(kParams, 0.0f), 8);
    combiner = new ps::PushCombiner(
        *shard, ps::PushCombinerSpec{.batch = true,
                                     .lockfree = state.range(0) != 0,
                                     .ring_depth = 1024});
  }
  const std::vector<float> g(kParams, 0.001f);
  const float scale = 1.0f / 64.0f;
  for (auto _ : state) {
    combiner->apply(g, scale);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(kParams * sizeof(float)));
  if (state.thread_index() == 0) {
    delete combiner;
    delete shard;
    combiner = nullptr;
    shard = nullptr;
  }
}
BENCHMARK(BM_CombinerHandoff)
    ->Arg(0)
    ->Arg(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

void BM_StripedApplyPinned(benchmark::State& state) {
  // NUMA-aware apply pool: a 4 MiB shard swept by 2 dedicated apply threads
  // that first-touched their own stripe partitions. range(0) = pin threads.
  // On single-node machines pinned vs unpinned should be a wash (the knob
  // must cost nothing); on multi-socket machines pinning keeps every stripe
  // sweep on memory local to its thread.
  const bool pin = state.range(0) != 0;
  constexpr std::size_t kParams = std::size_t{1} << 20;
  ps::StripedShard shard(std::vector<float>(kParams, 0.0f), 8, {},
                         /*defer_first_touch=*/true);
  ps::PushCombiner combiner(shard, ps::PushCombinerSpec{.batch = true,
                                                        .lockfree = true,
                                                        .apply_threads = 2,
                                                        .pin_threads = pin});
  const std::vector<float> g(kParams, 0.001f);
  for (auto _ : state) {
    combiner.apply(g, 1.0f / 64.0f);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(kParams * sizeof(float)));
}
BENCHMARK(BM_StripedApplyPinned)->Arg(0)->Arg(1)->UseRealTime();

void BM_RecvZeroCopy(benchmark::State& state) {
  // Receive-path A/B: a burst of [u32 len | frame] records lands in the
  // streaming RecvBuffer (one bulk "socket" copy, shared by both sides), then
  // each frame is turned into a Message. range(0) = 0 decodes with the
  // owning deserialize() (per-frame payload alloc + copy — the pre-§11
  // receive cost), 1 with deserialize_view() borrowing the floats in place
  // (the TCP reader's actual path). range(1) = floats per frame.
  const bool zero_copy = state.range(0) != 0;
  constexpr int kFrames = 16;
  net::Message m;
  m.type = net::MsgType::kPush;
  m.values.resize(static_cast<std::size_t>(state.range(1)), 1.5f);
  const std::vector<std::uint8_t> frame = m.serialize();
  std::vector<std::uint8_t> wire;
  const auto len = static_cast<std::uint32_t>(frame.size());
  for (int i = 0; i < kFrames; ++i) {
    wire.insert(wire.end(), reinterpret_cast<const std::uint8_t*>(&len),
                reinterpret_cast<const std::uint8_t*>(&len) + sizeof(len));
    wire.insert(wire.end(), frame.begin(), frame.end());
  }
  net::RecvBuffer rb;
  for (auto _ : state) {
    const auto dst = rb.writable(wire.size());
    std::memcpy(dst.data(), wire.data(), wire.size());  // the kernel's copy
    rb.commit(wire.size());
    std::uint32_t frame_len = 0;
    while (rb.peek_length(&frame_len)) {
      const auto bytes = rb.take_frame(frame_len);
      net::Message out;
      if (zero_copy) {
        benchmark::DoNotOptimize(net::Message::deserialize_view(bytes, &out));
      } else {
        benchmark::DoNotOptimize(net::Message::deserialize(bytes, &out));
      }
      benchmark::DoNotOptimize(out.values.data());
    }
  }
  state.SetItemsProcessed(state.iterations() * kFrames);
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(wire.size()));
}
BENCHMARK(BM_RecvZeroCopy)->Args({0, 8192})->Args({1, 8192})->Args({0, 65536})->Args({1, 65536});

void BM_Axpy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<float> x(n, 1.0f), y(n, 0.5f);
  for (auto _ : state) {
    ml::axpy(0.01f, y, x);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(2 * n * sizeof(float)));
}
BENCHMARK(BM_Axpy)->Arg(1024)->Arg(65536);

void BM_BiasGrad(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kBatch = 64;
  std::vector<float> dy(kBatch * n, 0.25f), db(n);
  for (auto _ : state) {
    ml::bias_grad(kBatch, n, dy.data(), db.data());
    benchmark::DoNotOptimize(db.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(kBatch * n * sizeof(float)));
}
BENCHMARK(BM_BiasGrad)->Arg(256)->Arg(4096);

void BM_ReplicationLogAppendTrim(benchmark::State& state) {
  // One chain round at the head: append a push per worker (the log copies the
  // payload — that copy IS the r>1 steady-state overhead on the apply path),
  // then the tail ack trims the whole window. range(0) = workers in flight,
  // range(1) = floats per push.
  const auto workers = static_cast<std::uint32_t>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  const std::vector<float> grad(n, 0.001f);
  replica::ReplicationLog log;
  std::uint64_t seq = 1;
  for (auto _ : state) {
    for (std::uint32_t w = 0; w < workers; ++w) {
      benchmark::DoNotOptimize(log.append(w, seq, 0, grad));
    }
    ++seq;
    log.trim_to(log.next_lsn() - 1, [](replica::LogEntry& e) { benchmark::DoNotOptimize(e); });
  }
  state.SetItemsProcessed(state.iterations() * workers);
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(workers * n * sizeof(float)));
}
BENCHMARK(BM_ReplicationLogAppendTrim)->Args({8, 1024})->Args({64, 1024})->Args({8, 65536});

void BM_ReplicationLogRetransmitLookup(benchmark::State& state) {
  // Chain-repair path: a worker retransmit probes the pending window by
  // (worker, seq). The window is bounded by the ack horizon (one outstanding
  // push per worker), so the linear scan stays short; range(0) = window size.
  const auto workers = static_cast<std::uint32_t>(state.range(0));
  const std::vector<float> grad(256, 0.001f);
  replica::ReplicationLog log;
  for (std::uint32_t w = 0; w < workers; ++w) log.append(w, 7, 0, grad);
  std::uint32_t probe = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(log.find(probe, 7));
    benchmark::DoNotOptimize(log.find_lsn(probe + 1));
    probe = (probe + 1) % workers;
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_ReplicationLogRetransmitLookup)->Arg(8)->Arg(64)->Arg(256);

void BM_ReplicaRead(benchmark::State& state) {
  // Bounded-read service on a chain replica (DESIGN.md §13): horizon scan
  // over the per-worker applied-progress vector, read-window dedup, and the
  // shard copy-out into the response frame. This is the unit of work the
  // read-offload ablation spreads across the chain; range(0) = shard floats.
  struct SinkTransport final : net::Transport {
    void register_node(net::NodeId, Handler) override {}
    void send(net::Message msg) override { benchmark::DoNotOptimize(msg); }
  };
  const auto n = static_cast<std::size_t>(state.range(0));
  constexpr std::uint32_t kWorkers = 8;
  SinkTransport sink;
  replica::ReplicaSpec spec;
  spec.node_id = 2;
  spec.server_rank = 0;
  spec.chain_pos = 1;
  spec.num_workers = kWorkers;
  spec.initial_shard.assign(n, 0.0f);
  spec.successor = 0;  // tail: no forwarding on the seeding path
  spec.apply_scale = 1.0f / static_cast<float>(kWorkers);
  replica::ReplicaNode node(std::move(spec), sink);
  // Seed the horizon: one applied push per worker puts read_horizon() at 5.
  for (std::uint32_t w = 0; w < kWorkers; ++w) {
    net::Message rep;
    rep.type = net::MsgType::kReplicate;
    rep.src = 1;
    rep.dst = 2;
    rep.request_id = w + 1;  // lsn
    rep.seq = 1;
    rep.worker_rank = w;
    rep.progress = 5;
    auto vals = rep.values.mutable_span_resized(n);
    for (auto& x : vals) x = 0.001f;
    node.handle(std::move(rep));
  }
  std::uint64_t ticket = 1;
  for (auto _ : state) {
    net::Message pull;
    pull.type = net::MsgType::kPull;
    pull.src = 9;
    pull.dst = 2;
    pull.request_id = ticket++;
    pull.worker_rank = kWorkers;  // fleet-style rank outside the training set
    pull.progress = 5;            // reader clock == horizon: bound-0 satisfiable
    pull.seq = ps::encode_read_bound(ps::ReadOptions{
        .clock = 5, .max_staleness_clocks = 0, .consistency = ps::Consistency::kBounded});
    node.handle(std::move(pull));
  }
  if (node.reads_served() != static_cast<std::int64_t>(state.iterations())) {
    state.SkipWithError("replica fell back instead of serving");
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(n * sizeof(float)));
}
BENCHMARK(BM_ReplicaRead)->Arg(1024)->Arg(65536);

void BM_NetworkModelDeliver(benchmark::State& state) {
  sim::NetworkModel net(sim::NetworkSpec{}, 64);
  double now = 0.0;
  std::uint32_t src = 0;
  for (auto _ : state) {
    now = std::max(now, net.deliver(src, 63, 4096.0, now));
    src = (src + 1) % 63;
  }
  benchmark::DoNotOptimize(now);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetworkModelDeliver);

void BM_SimEnvScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::SimEnv env;
    for (int i = 0; i < 1000; ++i) {
      env.schedule(static_cast<double>(i % 13), [] {});
    }
    env.run();
    benchmark::DoNotOptimize(env.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimEnvScheduleRun);

void BM_EpsShard(benchmark::State& state) {
  const ml::ResMlp model(512, 32, 27, 100);
  const auto layers = model.layer_sizes();
  ps::EpsSlicer slicer(1024);
  for (auto _ : state) {
    auto sh = slicer.shard(layers, 16);
    benchmark::DoNotOptimize(sh.num_params);
  }
}
BENCHMARK(BM_EpsShard);

void BM_EmbeddingRowApply(benchmark::State& state) {
  // The sparse apply inner loop: one gradient through the per-row optimizer,
  // stripe lock + hash lookup included (the reducer drains through exactly
  // this path). range(0) = row dim, range(1) = 0 for SGD, 1 for AdaGrad
  // (AdaGrad reads+writes the co-located accumulator: double the row bytes).
  const auto dim = static_cast<std::uint32_t>(state.range(0));
  embed::TableSpec spec;
  spec.dim = dim;
  spec.rows = 4096;
  spec.opt.kind = state.range(1) != 0 ? ml::RowOptKind::kAdaGrad : ml::RowOptKind::kSgd;
  embed::EmbeddingTable table(spec, /*seed=*/7);
  const std::vector<float> grad(dim, 0.001f);
  std::uint64_t row = 0;
  for (std::uint64_t r = 0; r < spec.rows; ++r) table.apply(r, grad);  // pre-materialize
  for (auto _ : state) {
    table.apply(row, grad);
    row = (row + 1) % spec.rows;
  }
  benchmark::DoNotOptimize(table.applies());
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(2 * dim * sizeof(float)));
}
BENCHMARK(BM_EmbeddingRowApply)->Args({8, 0})->Args({8, 1})->Args({64, 0})->Args({64, 1});

void BM_SparseSerialize(benchmark::State& state) {
  // Sparse codec round trip: pack a batch (header + 64-bit row ids + row
  // values as raw words) into the float payload and parse it back — the
  // per-message cost every sparse push/pull-resp pays on top of the frame
  // serialize that BM_MessageSerialize measures. range(0) = rows per batch.
  const auto n = static_cast<std::size_t>(state.range(0));
  constexpr std::uint32_t kDim = 8;
  embed::SparseBatch b;
  b.table_id = 1;
  b.dim = kDim;
  b.rows.resize(n);
  for (std::size_t i = 0; i < n; ++i) b.rows[i] = i * 37;
  b.values.assign(n * kDim, 0.125f);
  net::Payload p;
  for (auto _ : state) {
    embed::encode_sparse(b, p);
    benchmark::DoNotOptimize(p.data());
    embed::SparseBatch out;
    benchmark::DoNotOptimize(embed::decode_sparse(p.span(), &out));
    benchmark::DoNotOptimize(out.values.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
  state.SetBytesProcessed(
      state.iterations() *
      static_cast<std::int64_t>(embed::encoded_size(b) * sizeof(float)));
}
BENCHMARK(BM_SparseSerialize)->Arg(8)->Arg(64)->Arg(1024);

void BM_GatherScatter(benchmark::State& state) {
  ps::EpsSlicer slicer(1024);
  const auto sh = slicer.shard({262144}, 8);
  std::vector<float> flat(262144, 1.0f);
  std::vector<float> buf(sh.shards[0].total);
  for (auto _ : state) {
    sh.shards[0].gather(flat, buf);
    sh.shards[0].scatter(buf, flat);
    benchmark::DoNotOptimize(flat.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(2 * buf.size() * sizeof(float)));
}
BENCHMARK(BM_GatherScatter);

// Metric recording under contention: the pre-§12 design (one mutex + map
// lookup per record, reconstructed here as the baseline) against the
// wait-free sharded obs::Counter every hot path records through now. Run
// with ->Threads(8) these disagree by well over an order of magnitude —
// the gap the telemetry rebuild exists to close.
void BM_MetricsRecordMutexMap(benchmark::State& state) {
  static std::mutex mu;
  static std::map<std::string, std::int64_t> counters;
  const std::string name = "bench.push_count";
  for (auto _ : state) {
    std::scoped_lock lock(mu);
    benchmark::DoNotOptimize(counters[name] += 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsRecordMutexMap)->Threads(1)->Threads(8)->UseRealTime();

void BM_MetricsRecordWaitFree(benchmark::State& state) {
  static obs::Registry reg;
  // Components cache the handle at construction; the registry lookup is
  // not on the per-record path.
  obs::Counter& c = reg.counter("bench.push_count");
  for (auto _ : state) {
    c.add(1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsRecordWaitFree)->Threads(1)->Threads(8)->UseRealTime();

void BM_MetricsRecordHistogram(benchmark::State& state) {
  static obs::Registry reg;
  obs::Histogram& h = reg.histogram("bench.apply_ns");
  std::uint64_t v = 1;
  for (auto _ : state) {
    h.record(v);
    v = (v * 2 + 1) & 0xFFFFF;  // walk the buckets
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsRecordHistogram)->Threads(1)->Threads(8)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
