// Figure 8: accuracy-vs-time of soft barrier vs lazy execution for ResNet-56
// on CIFAR-10, 32 workers, SSP s=2. The paper reports lazy execution ~1.21x
// faster to converge and more robust (higher accuracy mid-training).
#include <cstdio>

#include "bench_util.h"
#include "common/config.h"

int main(int argc, char** argv) {
  using namespace fluentps;
  const auto args = Config::from_args(argc, argv);
  const auto iters = args.get_int("iters", 200);

  bench::print_banner("Fig 8 | Lazy execution vs soft barrier (ResNet-56, N=32, SSP s=2)",
                      "lazy execution ~1.21x faster to converge, more robust accuracy");

  core::ExperimentResult results[2];
  const char* names[2] = {"soft_barrier", "lazy_execution"};
  Table curve("Fig 8: accuracy vs time");
  curve.add_row({"mode", "time_s", "iter", "accuracy"});

  for (int mode = 0; mode < 2; ++mode) {
    auto cfg = bench::resnet56_like(32, 8, iters);
    cfg.sync.kind = "ssp";
    cfg.sync.staleness = 2;
    cfg.dpr_mode = mode == 0 ? ps::DprMode::kSoftBarrier : ps::DprMode::kLazy;
    cfg.eval_every = iters / 10;
    results[mode] = core::run_experiment(cfg);
    for (const auto& pt : results[mode].curve) {
      curve.add(std::string(names[mode]), bench::fmt(pt.time, 2), std::to_string(pt.iter),
                bench::fmt(pt.accuracy, 3));
    }
  }

  std::printf("%s\n", curve.to_ascii().c_str());
  curve.write_csv(bench::csv_path("fig08_lazy_vs_soft"));

  const auto& soft = results[0];
  const auto& lazy = results[1];
  Table summary("Fig 8 summary");
  summary.add_row({"mode", "total_s", "final_acc", "dprs", "dprs_per_100it"});
  summary.add(std::string(names[0]), bench::fmt(soft.total_time, 2),
              bench::fmt(soft.final_accuracy, 3), std::to_string(soft.dpr_total),
              bench::fmt(soft.dprs_per_100_iters, 1));
  summary.add(std::string(names[1]), bench::fmt(lazy.total_time, 2),
              bench::fmt(lazy.final_accuracy, 3), std::to_string(lazy.dpr_total),
              bench::fmt(lazy.dprs_per_100_iters, 1));
  std::printf("%s\n", summary.to_ascii().c_str());

  // Time to reach a common accuracy target (90% of the weaker final).
  const double target = 0.9 * std::min(soft.final_accuracy, lazy.final_accuracy);
  const double t_soft = bench::time_to_accuracy(soft, target);
  const double t_lazy = bench::time_to_accuracy(lazy, target);

  bench::report("lazy speedup to target accuracy", "~1.21x", bench::speedup(t_soft, t_lazy),
                t_lazy <= t_soft * 1.05);
  bench::report("lazy final accuracy >= soft", "more robust convergence",
                bench::fmt(lazy.final_accuracy, 3) + " vs " + bench::fmt(soft.final_accuracy, 3),
                lazy.final_accuracy >= soft.final_accuracy - 0.02);
  bench::report("lazy reduces buffered DPRs", "fewer soft-barrier stalls",
                std::to_string(lazy.dpr_total) + " vs " + std::to_string(soft.dpr_total),
                lazy.dpr_total <= soft.dpr_total);
  return 0;
}
