// Figure 3: the trade-off between the time delay of answering a delayed pull
// request and the staleness of the parameters it returns.
//
// Part 1 replays the paper's exact scenario on the sync engine (s = 3, three
// workers, W2 lagging): the soft barrier answers W0's DPR after ONE V_train
// advance while several of W2's gradients are still missing; lazy execution
// answers after THREE advances with fully updated parameters. (The paper
// numbers iterations from 1 and counts 2 missing gradients; with 0-based
// iterations the identical protocol leaves 3 missing — same trade-off.)
//
// Part 2 measures the same trade-off statistically on a full training run:
// mean DPR release delay (in V_train advances) vs the staleness gap of
// served parameters, soft vs lazy.
#include <cstdio>

#include "bench_util.h"
#include "ps/sync_engine.h"

namespace {

using namespace fluentps;
using namespace fluentps::ps;

SyncEngine fig3_engine(DprMode mode) {
  SyncEngine::Spec spec;
  spec.num_workers = 3;
  spec.mode = mode;
  spec.model = make_sync_model({.kind = "ssp", .staleness = 3}, 3);
  spec.seed = 1;
  return SyncEngine(std::move(spec));
}

struct Fig3Outcome {
  std::int64_t advances_waited = 0;
  std::int64_t gradients_missing = 0;  // W2 gradients absent from the reply
};

Fig3Outcome replay(DprMode mode) {
  auto engine = fig3_engine(mode);
  // W0 and W1 complete iterations 0..3 and push; W2 is stuck before pushing.
  for (std::int64_t i = 0; i <= 3; ++i) {
    (void)engine.on_push(0, i);
    (void)engine.on_push(1, i);
  }
  // W0 pulls w4 at progress 3 -> DPR in both modes (gap 3 >= s).
  const bool served = engine.on_pull(0, 3, /*request_id=*/42);
  Fig3Outcome out;
  if (served) return out;
  // W2 now pushes g0, g1, g2, g3 one by one; count advances until release.
  std::int64_t w2_pushed = -1;
  for (std::int64_t i = 0; i <= 3; ++i) {
    const auto released = engine.on_push(2, i);
    w2_pushed = i;
    if (!released.empty()) break;
  }
  out.advances_waited = engine.release_delay().quantile(1.0);
  out.gradients_missing = 3 - w2_pushed;  // g2^(w2_pushed+1..3) not yet applied
  return out;
}

}  // namespace

int main() {
  bench::print_banner("Fig 3 | DPR delay vs returned-parameter staleness",
                      "soft barrier: released after 1 advance, W2 gradients missing; "
                      "lazy: released after 3 advances, fully updated");

  fluentps::Table exact("Fig 3 exact replay (s=3, W0 pulls w4 while W2 lags)");
  exact.add_row({"mode", "V_train advances waited", "W2 gradients missing in reply"});
  const auto soft = replay(DprMode::kSoftBarrier);
  const auto lazy = replay(DprMode::kLazy);
  exact.add(std::string("soft barrier"), std::to_string(soft.advances_waited),
            std::to_string(soft.gradients_missing));
  exact.add(std::string("lazy execution"), std::to_string(lazy.advances_waited),
            std::to_string(lazy.gradients_missing));
  std::printf("%s\n", exact.to_ascii().c_str());

  // Part 2: the statistical trade-off on a real run.
  fluentps::Table stats("Measured trade-off (ResNet-56, N=32, SSP s=2)");
  stats.add_row({"mode", "mean release delay (advances)", "mean served staleness gap",
                 "p95 served gap"});
  double soft_gap = 0.0, lazy_gap = 1.0, soft_delay = 1.0, lazy_delay = 0.0;
  for (const auto mode : {ps::DprMode::kSoftBarrier, ps::DprMode::kLazy}) {
    auto cfg = bench::resnet56_like(32, 8, 120);
    cfg.sync.kind = "ssp";
    cfg.sync.staleness = 2;
    cfg.dpr_mode = mode;
    const auto r = fluentps::core::run_experiment(cfg);
    stats.add(std::string(ps::to_string(mode)), bench::fmt(r.release_delay.mean(), 2),
              bench::fmt(r.staleness.mean(), 2),
              std::to_string(r.staleness.quantile(0.95)));
    if (mode == ps::DprMode::kSoftBarrier) {
      soft_gap = r.staleness.mean();
      soft_delay = r.release_delay.mean();
    } else {
      lazy_gap = r.staleness.mean();
      lazy_delay = r.release_delay.mean();
    }
  }
  std::printf("%s\n", stats.to_ascii().c_str());

  const bool exact_ok = soft.advances_waited == 1 && soft.gradients_missing == 3 &&
                        lazy.advances_waited == 3 && lazy.gradients_missing == 0;
  bench::report("Fig 3 exact trace", "soft: 1 wait + stale / lazy: 3 waits + fresh",
                exact_ok ? "reproduced (0-based)" : "MISMATCH", exact_ok);
  bench::report("lazy serves fresher parameters", "staleness -> 0",
                bench::fmt(lazy_gap, 2) + " vs " + bench::fmt(soft_gap, 2) + " gap",
                lazy_gap < soft_gap);
  bench::report("lazy waits longer per DPR", "delay grows",
                bench::fmt(lazy_delay, 2) + " vs " + bench::fmt(soft_delay, 2) + " advances",
                lazy_delay >= soft_delay);
  return exact_ok ? 0 : 1;
}
