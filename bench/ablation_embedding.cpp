// Ablation for the sparse embedding subsystem (DESIGN.md §10): what does the
// per-hot-row gradient reducer buy under zipfian skew, and does any of it
// cost correctness?
//
// Sweep: skew exponent s in {uniform, 2, 4} x reducer {off, on} on a
// two-tenant sparse job sharing the server set with a small dense job. With
// reduction ON a hot row's per-worker gradients coalesce into one summed
// row_apply per round; OFF applies each contribution separately. The skew
// knob controls how often workers collide on the same row, so the apply
// savings must grow with s — and in EVERY cell the summed server digest must
// equal the serial reference oracle replayed with the same flag (zero lost
// updates; the reducer is a throughput knob, not a semantics knob).
#include <cstdio>
#include <cstdint>
#include <string>

#include "bench_util.h"
#include "common/config.h"
#include "embed/table_spec.h"
#include "embed/workload.h"

namespace {

std::uint64_t u64_extra(const fluentps::core::ExperimentResult& r, const std::string& key) {
  const auto lo = r.extra.find(key + "_lo");
  const auto hi = r.extra.find(key + "_hi");
  if (lo == r.extra.end() || hi == r.extra.end()) return 0;
  return (static_cast<std::uint64_t>(hi->second) << 32) |
         static_cast<std::uint64_t>(lo->second);
}

double extra(const fluentps::core::ExperimentResult& r, const std::string& key) {
  const auto it = r.extra.find(key);
  return it == r.extra.end() ? 0.0 : it->second;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fluentps;
  const auto args = Config::from_args(argc, argv);
  const auto rounds = args.get_int("rounds", 40);
  const auto sparse_workers = static_cast<std::uint32_t>(args.get_int("sparse_workers", 4));

  bench::print_banner(
      "Ablation | Embedding tables: hot-row gradient reduction under zipfian skew",
      "coalescing a hot row's per-worker gradients into one apply cuts server "
      "apply work in proportion to the skew, at zero cost in updates lost");

  // A light dense job keeps the shared server set honest (multi-table serving
  // means dense + sparse tenants, not a dedicated sparse cluster).
  core::ExperimentConfig base;
  base.backend = core::Backend::kSim;
  base.num_workers = 4;
  base.num_servers = 2;
  base.max_iters = 40;
  base.sync = {.kind = "ssp", .staleness = 2};
  base.model.kind = "softmax";
  base.data.num_train = 512;
  base.data.num_test = 128;
  base.batch_size = 8;
  base.compute.kind = "lognormal";
  base.compute.base_seconds = 0.01;
  base.seed = 2019;
  base.retry.initial_timeout = 0.05;
  base.retry.max_timeout = 0.5;

  base.sparse.tables = embed::parse_tables(
      "emb:dim=16,rows=512,opt=adagrad,qos=2;ads:dim=4,rows=128,opt=sgd");
  base.sparse.num_workers = sparse_workers;
  base.sparse.rounds = rounds;
  base.sparse.batch_rows = 16;
  base.sparse.compute_seconds = 0.002;
  bench::apply_telemetry_args(args, base);

  struct Skew {
    const char* label;
    double s;
  };
  const Skew skews[] = {{"uniform", 0.0}, {"zipf 2", 2.0}, {"zipf 4", 4.0}};

  Table t("2 tenants, M=2, " + std::to_string(sparse_workers) + " sparse workers x " +
          std::to_string(rounds) + " rounds, by skew and reducer");
  t.add_row({"skew", "reduce", "rows_applied", "applies_saved", "pushes", "time_s",
             "zero_lost"});

  bool all_zero_lost = true;
  double saved_uniform = 0.0, saved_hot = 0.0;
  for (const Skew& sk : skews) {
    double rows_off = 0.0;
    for (const bool reduce : {false, true}) {
      auto cfg = base;
      cfg.sparse.zipf_s = sk.s;
      cfg.sparse.reduce = reduce;
      const auto r = core::run_experiment(cfg);
      bench::write_prometheus(r, "ablation_embedding");  // last cell wins
      const bool zero_lost = u64_extra(r, "sparse_state_digest") ==
                             embed::reference_state_digest(cfg.sparse, cfg.seed);
      all_zero_lost &= zero_lost;
      const double rows = extra(r, "sparse_rows_applied");
      std::string saved = "-";
      if (!reduce) {
        rows_off = rows;
      } else if (rows_off > 0.0) {
        const double frac = 1.0 - rows / rows_off;
        saved = bench::fmt(100.0 * frac, 1) + "%";
        if (sk.s == 0.0) saved_uniform = frac;
        if (sk.s == 4.0) saved_hot = frac;
      }
      t.add(sk.label, reduce ? "on" : "off", static_cast<int>(rows), saved,
            static_cast<int>(extra(r, "sparse_pushes")), bench::fmt(r.total_time, 2),
            zero_lost ? "OK" : "VIOLATED");
    }
  }
  std::printf("%s\n", t.to_ascii().c_str());
  t.write_csv(bench::csv_path("ablation_embedding"));

  bench::report("zero lost updates in every cell", "digest == serial oracle",
                all_zero_lost ? "all OK" : "VIOLATED", all_zero_lost);
  bench::report("reduction savings grow with skew", "hot >> uniform",
                bench::fmt(100.0 * saved_hot, 1) + "% vs " +
                    bench::fmt(100.0 * saved_uniform, 1) + "% saved",
                saved_hot > saved_uniform && saved_hot > 0.10);
  return 0;
}
