// Ablation for chain replication (DESIGN.md §9): what does keeping r live
// copies of every shard cost, and what does it buy when the head dies?
//
// Two sweeps on the ssp(3) workload:
//  (1) steady-state overhead at r = 1/2/3 with zero faults — the r = 1 row
//      runs with the reliability layer forced on so the comparison isolates
//      the chain itself (kReplicate forwards + deferred worker acks), not
//      the ack protocol both paths share. The documented bound: r = 2 costs
//      well under 2x, because replicate forwards overlap with compute and
//      worker acks are deferred only by the chain RTT, not serialized on it.
//  (2) recovery comparison under one mid-run head kill — checkpoint rollback
//      (r = 1: restore the latest FLPS02 blob, re-synthesize rolled-back
//      counts) vs chain failover (r = 2: promote the successor, replay its
//      log, rebind workers). Failover must lose nothing (rolled_back == 0)
//      and get the shard serving again faster than restart-from-checkpoint.
#include <cstdio>
#include <limits>

#include "bench_util.h"
#include "common/config.h"

int main(int argc, char** argv) {
  using namespace fluentps;
  const auto args = Config::from_args(argc, argv);
  const auto iters = args.get_int("iters", 250);
  const auto workers = static_cast<std::uint32_t>(args.get_int("workers", 16));

  bench::print_banner("Ablation | Chain replication: overhead vs recovery",
                      "chain failover recovers a killed shard head without losing a single "
                      "acknowledged update, at a bounded steady-state cost over checkpointing");

  auto base = bench::alexnet_like(workers, 2, iters);
  base.sync = {.kind = "ssp", .staleness = 3};
  base.retry.initial_timeout = 0.05;
  base.retry.max_timeout = 1.0;
  bench::apply_telemetry_args(args, base);

  // --- sweep 1: steady-state overhead at r = 1/2/3 -----------------------
  auto reliable = base;
  reliable.force_reliability = true;
  const auto r1 = core::run_experiment(reliable);
  bench::write_prometheus(r1, "ablation_replication");

  Table steady("ssp(3), N=" + std::to_string(workers) + ", no faults, by replication factor");
  steady.add_row({"r", "time_s", "overhead", "bytes_x", "replicated", "log_hw", "accuracy"});
  steady.add("1 (reliable)", bench::fmt(r1.total_time, 2), "1.00x", "1.00x", 0, 0,
             bench::fmt(r1.final_accuracy, 3));

  double overhead_r2 = 0.0;
  for (const std::uint32_t r : {2u, 3u}) {
    auto cfg = base;
    cfg.replication_factor = r;
    const auto res = core::run_experiment(cfg);
    const auto log_hw = res.extra.count("replication_log_high_water")
                            ? res.extra.at("replication_log_high_water")
                            : 0.0;
    steady.add(static_cast<int>(r), bench::fmt(res.total_time, 2),
               bench::fmt(res.total_time / r1.total_time, 2) + "x",
               bench::fmt(res.bytes_total / r1.bytes_total, 2) + "x",
               static_cast<int>(res.replicated_updates), static_cast<int>(log_hw),
               bench::fmt(res.final_accuracy, 3));
    if (r == 2) overhead_r2 = res.total_time / r1.total_time;
  }
  std::printf("%s\n", steady.to_ascii().c_str());
  steady.write_csv(bench::csv_path("ablation_replication_steady"));

  // --- sweep 2: checkpoint rollback vs chain failover ---------------------
  // Same head kill for both paths; only the recovery mechanism differs.
  const double crash_at = 0.35;

  auto ckpt = base;
  ckpt.faults.link.drop_prob = 0.05;
  ckpt.faults.checkpoint_every = 0.2;
  ckpt.faults.crashes.push_back({/*server_rank=*/0, crash_at, crash_at + 0.25});
  const auto rb = core::run_experiment(ckpt);
  // Recovery gap: crash event -> the matching "recovered" handshake done.
  double ckpt_recovery = 0.0, t_crash = 0.0;
  for (const auto& e : rb.fault_events) {
    if (e.kind == "crash") t_crash = e.time;
    if (e.kind == "recovered") ckpt_recovery = e.time - t_crash;
  }

  auto chain = base;
  chain.replication_factor = 2;
  chain.faults.link.drop_prob = 0.05;
  chain.faults.crashes.push_back(
      {/*server_rank=*/0, crash_at, std::numeric_limits<double>::infinity()});
  const auto fo = core::run_experiment(chain);

  Table recov("ssp(3), 5% loss, one head kill at t=" + bench::fmt(crash_at, 2) +
              "s, by recovery path");
  recov.add_row({"path", "time_s", "recovery_s", "lost_updates", "events", "accuracy"});
  recov.add("checkpoint rollback (r=1)", bench::fmt(rb.total_time, 2),
            bench::fmt(ckpt_recovery, 3), static_cast<int>(rb.rolled_back_updates),
            "recoveries=" + std::to_string(rb.server_recoveries),
            bench::fmt(rb.final_accuracy, 3));
  recov.add("chain failover (r=2)", bench::fmt(fo.total_time, 2),
            bench::fmt(fo.failover_seconds, 3), static_cast<int>(fo.rolled_back_updates),
            "failovers=" + std::to_string(fo.failovers), bench::fmt(fo.final_accuracy, 3));
  std::printf("%s\n", recov.to_ascii().c_str());
  recov.write_csv(bench::csv_path("ablation_replication_recovery"));

  bench::report("failover loses zero acked updates", "0 (vs checkpoint rollback > 0)",
                std::to_string(fo.rolled_back_updates) + " vs " +
                    std::to_string(rb.rolled_back_updates) + " rolled back",
                fo.rolled_back_updates == 0 && rb.rolled_back_updates > 0);
  bench::report("failover recovers faster than rollback", "detect delay only",
                bench::fmt(fo.failover_seconds, 3) + "s vs " + bench::fmt(ckpt_recovery, 3) +
                    "s restore",
                fo.failovers == 1 && fo.failover_seconds < ckpt_recovery);
  bench::report("r=2 steady-state overhead bounded", "< 1.5x reliable baseline",
                bench::fmt(overhead_r2, 2) + "x", overhead_r2 < 1.5);
  return 0;
}
