// Ablation for the elastic membership subsystem (DESIGN.md §14): what does a
// mid-run scale-out cost with live shard migration, versus the conventional
// stop-the-world alternative of checkpointing, restarting the job on the new
// server set, and resuming from the saved model?
//
// Three measurements on the alexnet-like ssp(3) workload:
//  (1) head-to-head at hidden=256 — one run that adds a server at iters/2 via
//      the elastic controller (training continues through the pre-copy; only
//      the epoch fence stalls workers), against a two-stage restart baseline
//      (3-server stage, carry final_params, 4-server stage). The staged sum
//      with a zero-cost hand-off is the *ideal offline reshard* — a real
//      restart additionally idles every worker for at least the full-model
//      round trip (checkpoint drain + scatter), which we model from the
//      fabric parameters. Live migration ships MORE bytes than the restart's
//      scatter (snapshot plus a delta stream for every push that lands in
//      the lead window), but every one of them overlaps training.
//  (2) model-size sweep — the fence stall is set by in-flight drain, not by
//      model bytes, so it stays ~zero while the restart gap grows linearly.
//  (3) the same scale-out plus a drain under 5% loss / 2% duplication — the
//      epoch protocol must commit both ops and finish training despite the
//      faulty fabric.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "common/config.h"
#include "elastic/membership.h"

namespace {

fluentps::core::ExperimentConfig elastic_base(std::uint32_t workers, std::int64_t iters) {
  auto cfg = fluentps::bench::alexnet_like(workers, 4, iters);
  cfg.sync = {.kind = "ssp", .staleness = 3};
  cfg.retry.initial_timeout = 0.05;
  cfg.retry.max_timeout = 1.0;
  return cfg;
}

/// Stop-the-world restart gap on the same virtual fabric: drain the whole
/// model into a checkpoint, then scatter it onto the new layout, plus one
/// reconnect round trip per node — no worker trains while any of it happens.
double modeled_restart_gap(const fluentps::core::ExperimentConfig& cfg, std::size_t num_params) {
  const double model_bytes = 4.0 * static_cast<double>(num_params);
  return 2.0 * model_bytes / cfg.net.bandwidth_bytes_per_sec +
         static_cast<double>(cfg.num_workers + cfg.num_servers) * cfg.net.latency_seconds;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fluentps;
  const auto args = Config::from_args(argc, argv);
  const auto iters = args.get_int("iters", 240);
  const auto workers = static_cast<std::uint32_t>(args.get_int("workers", 16));

  bench::print_banner("Ablation | Elastic membership: live migration vs stop-the-world restart",
                      "a scale-out epoch stalls workers for a fence, not for a full "
                      "checkpoint-restart round trip, and ships only the re-placed slices");

  // --- (1) head-to-head at hidden=256 ------------------------------------
  auto live_cfg = elastic_base(workers, iters);
  live_cfg.elastic.initial_servers = 3;
  live_cfg.elastic.schedule.push_back({.at_iter = iters / 2, .add = true, .rank = 3});
  const auto live = core::run_experiment(live_cfg);
  bench::write_prometheus(live, "ablation_elastic");

  auto stage1 = elastic_base(workers, iters / 2);
  stage1.num_servers = 3;
  const auto r1 = core::run_experiment(stage1);
  auto stage2 = elastic_base(workers, iters - iters / 2);
  stage2.initial_params = r1.final_params;
  const auto r2 = core::run_experiment(stage2);
  const double gap = modeled_restart_gap(live_cfg, live.final_params.size());
  const double staged_total = r1.total_time + gap + r2.total_time;
  const double model_mb = 4.0 * static_cast<double>(live.final_params.size()) / 1e6;

  Table head("3 -> 4 servers at iter " + std::to_string(iters / 2) + ", N=" +
             std::to_string(workers) + ", ssp(3)");
  head.add_row({"approach", "time_s", "worker_stall_s", "overlapped_s", "shipped_MB",
                "accuracy"});
  head.add("live migration", bench::fmt(live.total_time, 2),
           bench::fmt(live.elastic_stall_seconds, 4),
           bench::fmt(live.elastic_migrate_seconds, 2),
           bench::fmt(live.elastic_bytes_moved / 1e6, 3), bench::fmt(live.final_accuracy, 3));
  head.add("stop-the-world restart", bench::fmt(staged_total, 2), bench::fmt(gap, 4), "0.00",
           bench::fmt(model_mb, 3), bench::fmt(r2.final_accuracy, 3));
  std::printf("%s\n", head.to_ascii().c_str());
  head.write_csv(bench::csv_path("ablation_elastic_head_to_head"));

  // --- (2) model-size sweep ----------------------------------------------
  Table sweep("scale-out cost by model size (stall vs modeled restart gap)");
  sweep.add_row({"hidden", "model_MB", "stall_s", "moved_MB", "restart_gap_s", "gap/stall"});
  double worst_ratio = 1e300;
  for (const int hidden : {64, 256, 512}) {
    auto cfg = elastic_base(workers, iters);
    cfg.model.hidden = hidden;
    cfg.elastic.initial_servers = 3;
    cfg.elastic.schedule.push_back({.at_iter = iters / 2, .add = true, .rank = 3});
    const auto r = core::run_experiment(cfg);
    const double bytes = 4.0 * static_cast<double>(r.final_params.size());
    const double g = modeled_restart_gap(cfg, r.final_params.size());
    // The sim fence can legitimately commit in zero virtual time (nothing in
    // flight when the last worker parks), so floor the stall at 0.1 ms — one
    // fabric latency — to keep the ratio finite.
    const double ratio = g / std::max(r.elastic_stall_seconds, 1e-4);
    sweep.add(hidden, bench::fmt(bytes / 1e6, 3), bench::fmt(r.elastic_stall_seconds, 4),
              bench::fmt(r.elastic_bytes_moved / 1e6, 3), bench::fmt(g, 4),
              bench::fmt(ratio, 1) + "x");
    worst_ratio = std::min(worst_ratio, ratio);
  }
  std::printf("%s\n", sweep.to_ascii().c_str());
  sweep.write_csv(bench::csv_path("ablation_elastic_model_size"));

  // --- (3) add + drain under a faulty fabric ------------------------------
  auto chaos_cfg = elastic_base(workers, iters);
  chaos_cfg.elastic.initial_servers = 3;
  chaos_cfg.elastic.schedule.push_back({.at_iter = iters / 3, .add = true, .rank = 3});
  chaos_cfg.elastic.schedule.push_back({.at_iter = 2 * iters / 3, .add = false, .rank = 1});
  chaos_cfg.faults.link.drop_prob = 0.05;
  chaos_cfg.faults.link.dup_prob = 0.02;
  const auto chaos = core::run_experiment(chaos_cfg);

  Table faulty("add@" + std::to_string(iters / 3) + " + drain@" +
               std::to_string(2 * iters / 3) + " under 5% drop / 2% dup");
  faulty.add_row({"epoch", "slices+rows", "stall_s", "retries", "accuracy"});
  faulty.add(static_cast<int>(chaos.elastic_epoch), static_cast<int>(chaos.elastic_migrations),
             bench::fmt(chaos.elastic_stall_seconds, 4), static_cast<int>(chaos.worker_retries),
             bench::fmt(chaos.final_accuracy, 3));
  std::printf("%s\n", faulty.to_ascii().c_str());
  faulty.write_csv(bench::csv_path("ablation_elastic_faulty"));

  bench::report("pre-copy streams off the critical path",
                "snapshot + delta bytes all overlap training; only the fence stalls",
                bench::fmt(live.elastic_bytes_moved / 1e6, 3) + " MB over " +
                    bench::fmt(live.elastic_migrate_seconds, 2) + "s pre-copy, " +
                    bench::fmt(live.elastic_stall_seconds, 4) + "s stalled",
                live.elastic_bytes_moved > 0 && live.elastic_migrate_seconds > 0.0 &&
                    live.elastic_stall_seconds < 0.5 * live.elastic_migrate_seconds);
  bench::report("fence stall beats the restart gap at every model size",
                "workers only wait out the in-flight drain, never a model round trip",
                "worst gap/stall " + bench::fmt(worst_ratio, 1) + "x (stall floored at 0.1 ms)",
                worst_ratio > 1.0);
  bench::report("scale-out within 5% of the ideal offline reshard",
                "a real restart adds at least the modeled gap on top of the staged sum",
                bench::fmt(live.total_time, 2) + "s vs " +
                    bench::fmt(r1.total_time + r2.total_time, 2) + "s ideal staged",
                live.total_time <= 1.05 * (r1.total_time + r2.total_time));
  bench::report("training quality across the epoch", "scale-out is loss-free",
                bench::fmt(live.final_accuracy, 3) + " vs " + bench::fmt(r2.final_accuracy, 3) +
                    " staged",
                live.final_accuracy > r2.final_accuracy - 0.1);
  bench::report("both epochs commit under loss", "the fence/quiesce protocol rides the "
                "at-least-once layer",
                "epoch " + std::to_string(chaos.elastic_epoch) + ", " +
                    std::to_string(chaos.elastic_migrations) + " moves, " +
                    std::to_string(chaos.iterations) + " iters",
                chaos.elastic_epoch == 2 && chaos.iterations == iters &&
                    chaos.elastic_migrations >= 1);
  return 0;
}
