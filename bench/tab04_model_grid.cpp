// Table IV: ASP (P=0), constant PSSP (P=0.1/0.3/0.5), SSP (P=1) and dynamic
// PSSP, each under soft-barrier and lazy execution, for four workloads:
//   AlexNet  / CIFAR-10   (64 workers, 1 server, s=3)
//   AlexNet  / CIFAR-100  (64 workers, 1 server, s=3)
//   ResNet-56 / CIFAR-10  (32 workers, 8 servers, s=2)
//   ResNet-56 / CIFAR-100 (32 workers, 8 servers, s=2)
// Reported per cell: average time per 100 iterations, final test accuracy,
// DPRs per 100 iterations — the paper's exact metrics.
#include <cstdio>

#include "bench_util.h"
#include "common/config.h"

int main(int argc, char** argv) {
  using namespace fluentps;
  const auto args = Config::from_args(argc, argv);
  const auto alex_iters = args.get_int("alex_iters", 250);
  const auto res_iters = args.get_int("res_iters", 150);

  bench::print_banner(
      "Table IV | {soft, lazy} x P in {0, .1, .3, .5, 1, dynamic} x 4 workloads",
      "time grows with P; lazy needs far fewer DPRs than soft (esp. ResNet-56); accuracy "
      "roughly flat with small wins for PSSP/dynamic; P=0 is ASP, P=1 is SSP");

  struct Workload {
    const char* name;
    core::ExperimentConfig base;
    std::int64_t s;
  };
  const Workload workloads[] = {
      {"AlexNet/CIFAR-10 (N=64)", bench::alexnet_like(64, 1, alex_iters), 3},
      {"AlexNet/CIFAR-100 (N=64)", bench::alexnet100_like(64, 1, alex_iters), 3},
      {"ResNet-56/CIFAR-10 (N=32)", bench::resnet56_like(32, 8, res_iters), 2},
      {"ResNet-56/CIFAR-100 (N=32)",
       [res_iters] {
         auto cfg = bench::resnet56_like(32, 8, res_iters);
         cfg.data.num_classes = 100;
         cfg.data.teacher_hidden = 64;
         cfg.data.num_train = 8192;
         cfg.data.num_test = 2048;
         return cfg;
       }(),
       2},
  };

  struct Cell {
    const char* name;
    ps::SyncModelSpec sync;
  };

  Table table("Table IV: time per 100 iters / accuracy / DPRs per 100 iters");
  table.add_row({"workload", "mode", "P", "time_per_100it", "acc", "dprs_per_100it"});

  bool lazy_fewer_dprs_resnet = true;
  bool time_monotone_soft = true;

  for (const auto& wl : workloads) {
    const Cell cells[] = {
        {"0 (ASP)", {.kind = "asp"}},
        {"0.1", {.kind = "pssp", .staleness = wl.s, .prob = 0.1}},
        {"0.3", {.kind = "pssp", .staleness = wl.s, .prob = 0.3}},
        {"0.5", {.kind = "pssp", .staleness = wl.s, .prob = 0.5}},
        {"1 (SSP)", {.kind = "ssp", .staleness = wl.s}},
        {"dynamic", {.kind = "pssp_dynamic", .staleness = wl.s, .alpha = 0.8,
                     .alpha_significance = true}},
    };
    double soft_dprs_ssp = 0.0, lazy_dprs_ssp = 0.0;
    for (const auto mode : {ps::DprMode::kSoftBarrier, ps::DprMode::kLazy}) {
      double prev_time = 0.0;
      for (const auto& cell : cells) {
        auto cfg = wl.base;
        cfg.sync = cell.sync;
        cfg.dpr_mode = mode;
        const auto r = core::run_experiment(cfg);
        const double time_per_100 =
            r.total_time * 100.0 / static_cast<double>(cfg.max_iters);
        table.add(std::string(wl.name), std::string(ps::to_string(mode)), std::string(cell.name),
                  bench::fmt(time_per_100, 2), bench::fmt(r.final_accuracy, 3),
                  bench::fmt(r.dprs_per_100_iters, 1));
        if (mode == ps::DprMode::kSoftBarrier) {
          // Stronger sync (larger P) must not be meaningfully faster
          // (ASP <= ... <= SSP, 10% queueing-noise tolerance).
          if (std::string(cell.name) != "dynamic") {
            if (time_per_100 + 1e-9 < prev_time * 0.90) time_monotone_soft = false;
            prev_time = time_per_100;
          }
          if (std::string(cell.name) == "1 (SSP)") soft_dprs_ssp = r.dprs_per_100_iters;
        } else if (std::string(cell.name) == "1 (SSP)") {
          lazy_dprs_ssp = r.dprs_per_100_iters;
        }
      }
      if (mode == ps::DprMode::kLazy && std::string(wl.name).starts_with("ResNet") &&
          lazy_dprs_ssp > soft_dprs_ssp) {
        lazy_fewer_dprs_resnet = false;
      }
    }
  }

  std::printf("%s\n", table.to_ascii().c_str());
  table.write_csv(bench::csv_path("tab04_model_grid"));

  bench::report("soft-barrier time grows with P", "ASP fastest, SSP slowest", "see table",
                time_monotone_soft);
  bench::report("lazy SSP needs far fewer DPRs than soft (ResNet)", "15160 -> 115 per 100it",
                "see table", lazy_fewer_dprs_resnet);
  return 0;
}
