// Figure 6 + headline claim: computation/communication time training
// ResNet-56 on CIFAR-10 (BSP, batch 4096, 8 servers) with N in {8,16,32}:
//   (1) PS-Lite (non-overlap, default slicing): communication grows to
//       dominate total training time;
//   (2) FluentPS (overlap): up to 4.26x faster, -86% communication;
//   (3) FluentPS + EPS: further 1.42x speedup, -55% communication.
// Headline: up to 6x end-to-end speedup and 93.7% communication reduction.
#include <cstdio>

#include "bench_util.h"
#include "common/config.h"

int main(int argc, char** argv) {
  using namespace fluentps;
  const auto args = Config::from_args(argc, argv);
  const auto iters = args.get_int("iters", 100);

  bench::print_banner(
      "Fig 6 | Overlap synchronization + EPS vs PS-Lite (ResNet-56, BSP, M=8)",
      "FluentPS up to 4.26x over PS-Lite (-86% comm); EPS a further 1.42x (-55% comm); "
      "headline up to 6x and -93.7% comm");

  struct System {
    const char* name;
    core::Arch arch;
    const char* slicer;
  };
  const System systems[] = {
      {"PS-Lite (non-overlap, default slicing)", core::Arch::kPsLite, "default"},
      {"FluentPS (overlap, default slicing)", core::Arch::kFluentPS, "default"},
      {"FluentPS + EPS", core::Arch::kFluentPS, "eps"},
  };

  Table table("Fig 6: per-worker computation vs communication seconds");
  table.add_row({"workers", "system", "compute_s", "comm_s", "total_s", "comm_share",
                 "shard_imbalance"});

  double best_speedup = 0.0, best_comm_red = 0.0;
  double overlap_speedup = 0.0, overlap_comm_red = 0.0;
  double eps_speedup = 0.0, eps_comm_red = 0.0;
  bool pslite_comm_dominates_at_32 = false;

  for (const std::uint32_t n : {8u, 16u, 32u}) {
    double pslite_total = 0.0, pslite_comm = 0.0;
    double overlap_total = 0.0, overlap_comm = 0.0;
    for (const auto& sys : systems) {
      auto cfg = bench::resnet56_comm_heavy(n, 8, iters);
      cfg.arch = sys.arch;
      cfg.slicer = sys.slicer;
      cfg.sync.kind = "bsp";
      // The paper's GPU cluster is a homogeneous fleet of p2.xlarge nodes:
      // per-iteration variance only, no persistent pace differences.
      cfg.compute.kind = "lognormal";
      cfg.compute.sigma = 0.3;
      const auto r = core::run_experiment(cfg);
      table.add(std::to_string(n), std::string(sys.name), bench::fmt(r.compute_time, 2),
                bench::fmt(r.comm_time, 2), bench::fmt(r.total_time, 2),
                bench::fmt(r.comm_time / (r.compute_time + r.comm_time), 2),
                bench::fmt(r.shard_imbalance, 2));
      if (sys.arch == core::Arch::kPsLite) {
        pslite_total = r.total_time;
        pslite_comm = r.comm_time;
        if (n == 32) {
          pslite_comm_dominates_at_32 = r.comm_time > r.compute_time;
        }
      } else if (std::string(sys.slicer) == "default") {
        overlap_total = r.total_time;
        overlap_comm = r.comm_time;
        overlap_speedup = std::max(overlap_speedup, pslite_total / r.total_time);
        overlap_comm_red = std::max(overlap_comm_red, 1.0 - r.comm_time / pslite_comm);
      } else {
        eps_speedup = std::max(eps_speedup, overlap_total / r.total_time);
        eps_comm_red = std::max(eps_comm_red, 1.0 - r.comm_time / overlap_comm);
        best_speedup = std::max(best_speedup, pslite_total / r.total_time);
        best_comm_red = std::max(best_comm_red, 1.0 - r.comm_time / pslite_comm);
      }
    }
  }

  std::printf("%s\n", table.to_ascii().c_str());
  table.write_csv(bench::csv_path("fig06_overlap_sync"));

  bench::report("PS-Lite comm dominates at N=32", "yes",
                pslite_comm_dominates_at_32 ? "yes" : "no", pslite_comm_dominates_at_32);
  bench::report("overlap speedup vs PS-Lite", "up to 4.26x",
                bench::fmt(overlap_speedup, 2) + "x", overlap_speedup > 1.5);
  bench::report("overlap comm reduction", "up to 86%", bench::fmt(100 * overlap_comm_red, 1) + "%",
                overlap_comm_red > 0.4);
  bench::report("EPS extra speedup", "up to 1.42x", bench::fmt(eps_speedup, 2) + "x",
                eps_speedup > 1.05);
  bench::report("EPS extra comm reduction", "up to 55%", bench::fmt(100 * eps_comm_red, 1) + "%",
                eps_comm_red > 0.1);
  bench::report("headline total speedup", "up to 6x", bench::fmt(best_speedup, 2) + "x",
                best_speedup > 2.0);
  bench::report("headline comm reduction", "93.7%", bench::fmt(100 * best_comm_red, 1) + "%",
                best_comm_red > 0.5);
  return 0;
}
