// Figure 10: accuracy vs time for AlexNet on CIFAR-10 with 64 workers under
// BSP / SSP(s=3) / ASP / PSSP(s=3, c in {0.1, 0.3, 0.5}), 4000 iterations.
// Paper: ASP finishes fastest but ~1% lower accuracy than PSSP(0.5);
// PSSP matches SSP's accuracy while running 1.38x faster.
#include <cstdio>

#include "bench_util.h"
#include "common/config.h"

int main(int argc, char** argv) {
  using namespace fluentps;
  const auto args = Config::from_args(argc, argv);
  const auto iters = args.get_int("iters", 300);
  const auto workers = static_cast<std::uint32_t>(args.get_int("workers", 64));

  bench::print_banner("Fig 10 | Accuracy vs time by sync model (N=64)",
                      "PSSP(0.5) best accuracy; 1.38x faster than SSP at similar accuracy; "
                      "ASP fastest but lowest accuracy");

  struct ModelRow {
    std::string name;
    ps::SyncModelSpec sync;
  };
  const ModelRow rows[] = {
      {"bsp", {.kind = "bsp"}},
      {"ssp(s=3)", {.kind = "ssp", .staleness = 3}},
      {"asp", {.kind = "asp"}},
      {"pssp(0.1)", {.kind = "pssp", .staleness = 3, .prob = 0.1}},
      {"pssp(0.3)", {.kind = "pssp", .staleness = 3, .prob = 0.3}},
      {"pssp(0.5)", {.kind = "pssp", .staleness = 3, .prob = 0.5}},
  };

  Table curve("Fig 10: accuracy vs time");
  curve.add_row({"model", "time_s", "accuracy"});
  Table summary("Fig 10 summary");
  summary.add_row({"model", "total_s", "final_acc", "dprs_per_100it"});

  double asp_time = 0.0, asp_acc = 0.0, ssp_time = 0.0, ssp_acc = 0.0;
  double pssp5_time = 0.0, pssp5_acc = 0.0;
  for (const auto& row : rows) {
    auto cfg = bench::alexnet_like(workers, 1, iters);
    cfg.sync = row.sync;
    cfg.eval_every = iters / 10;
    const auto r = core::run_experiment(cfg);
    for (const auto& pt : r.curve) {
      curve.add(row.name, bench::fmt(pt.time, 1), bench::fmt(pt.accuracy, 3));
    }
    summary.add(row.name, bench::fmt(r.total_time, 2), bench::fmt(r.final_accuracy, 3),
                bench::fmt(r.dprs_per_100_iters, 1));
    if (row.name == "asp") {
      asp_time = r.total_time;
      asp_acc = r.final_accuracy;
    } else if (row.name == "ssp(s=3)") {
      ssp_time = r.total_time;
      ssp_acc = r.final_accuracy;
    } else if (row.name == "pssp(0.5)") {
      pssp5_time = r.total_time;
      pssp5_acc = r.final_accuracy;
    }
  }

  std::printf("%s\n", summary.to_ascii().c_str());
  curve.write_csv(bench::csv_path("fig10_models_64w"));
  std::printf("curve CSV: %s\n", bench::csv_path("fig10_models_64w").c_str());

  bench::report("ASP fastest to finish", "yes", bench::fmt(asp_time, 1) + "s",
                asp_time <= std::min(ssp_time, pssp5_time));
  bench::report("PSSP(0.5) accuracy vs ASP", "~1% higher",
                bench::fmt(pssp5_acc, 3) + " vs " + bench::fmt(asp_acc, 3),
                pssp5_acc >= asp_acc - 0.015);
  bench::report("PSSP(0.5) speedup vs SSP", "1.38x", bench::speedup(ssp_time, pssp5_time),
                pssp5_time < ssp_time);
  bench::report("PSSP accuracy ~ SSP accuracy", "close",
                bench::fmt(pssp5_acc, 3) + " vs " + bench::fmt(ssp_acc, 3),
                std::abs(pssp5_acc - ssp_acc) < 0.05);
  return 0;
}
