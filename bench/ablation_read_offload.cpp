// Ablation for staleness-bounded replica read offloading (DESIGN.md §13):
// when a pull-only inference fleet shares the cluster with a training job,
// what does routing its bounded reads across the replication chain buy?
//
// A/B at r = 2, per sync mode, per backend: the same closed-loop fleet runs
// once head-only (read.prefer_replica = 0 — every bounded pull lands on the
// shard head) and once offloaded (round-robin over {head} ∪ replicas). The
// serving node is made the measured bottleneck the way it is on a loaded
// cluster: the sim charges `server_proc_seconds` per message through each
// node's serial busy model, and the threads backend sleeps
// `read.serve_seconds` per bounded read in the serving node's dispatch
// thread. With 2 chain members serving instead of 1, fleet throughput must
// scale ~2x; the documented floor is 1.7x (RR skew + the head's training
// traffic eat the rest).
//
// The staleness oracle rides along on every run: each fleet client asserts
// `serving_horizon + max_staleness >= client_clock` on every replica-served
// response, so a single violation anywhere in the 7-mode x 2-backend sweep
// fails the bench. Head-served responses are strong by definition.
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "common/config.h"

namespace {

struct ModeCase {
  const char* name;
  fluentps::ps::SyncModelSpec sync;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace fluentps;
  const auto args = Config::from_args(argc, argv);
  const auto iters = args.get_int("iters", 30);
  const auto workers = static_cast<std::uint32_t>(args.get_int("workers", 4));
  const auto fleet = static_cast<std::uint32_t>(args.get_int("read.fleet", 8));
  const auto pulls = args.get_int("read.pulls", 150);

  bench::print_banner("Ablation | Staleness-bounded replica read offloading",
                      "bounded pulls round-robined over the r=2 chain serve at ~2x the "
                      "head-only rate, with zero staleness-bound violations across every "
                      "sync mode on both backends");

  const ModeCase kModes[] = {
      {"bsp", {.kind = "bsp"}},
      {"asp", {.kind = "asp"}},
      {"ssp", {.kind = "ssp", .staleness = 3}},
      {"dsps", {.kind = "dsps", .staleness = 3}},
      {"drop", {.kind = "drop", .staleness = 3}},
      {"pssp", {.kind = "pssp", .staleness = 3, .prob = 0.3}},
      {"pssp_dynamic", {.kind = "pssp_dynamic", .staleness = 3, .prob = 0.3}},
  };

  auto base_cfg = [&](core::Backend backend) {
    core::ExperimentConfig cfg;
    cfg.backend = backend;
    cfg.num_workers = workers;
    cfg.num_servers = 2;
    cfg.max_iters = iters;
    cfg.model.kind = "softmax";
    cfg.data.dim = 32;
    cfg.data.num_classes = 10;
    cfg.data.num_train = 512;
    cfg.data.num_test = 128;
    cfg.opt.kind = "sgd";
    cfg.opt.lr.base = 0.4;
    cfg.batch_size = 16;
    cfg.seed = 2019;
    cfg.replication_factor = 2;
    cfg.read.fleet = fleet;
    cfg.read.pulls = pulls;
    cfg.read.max_staleness_clocks = 3;
    if (backend == core::Backend::kSim) {
      cfg.compute.kind = "lognormal";
      cfg.compute.base_seconds = 0.01;
      cfg.compute.sigma = 0.2;
      // Per-message serial service cost: read service at the head queues
      // behind this, so spreading reads over the chain buys throughput.
      cfg.server_proc_seconds = 3e-4;
      // Keep DPR machinery cheap relative to read service: under BSP/drop
      // the default 1ms per buffered/released pull turns the head into a
      // DPR-bound queue that both A and B arms share, compressing the
      // offload ratio this bench isolates.
      cfg.dpr_overhead_seconds = 1e-4;
    } else {
      // Threads backend, same bottleneck by construction: each bounded read
      // occupies its serving node's dispatch thread for 300us.
      cfg.read.serve_seconds = 3e-4;
    }
    return cfg;
  };

  double worst_ratio = 0.0;
  std::string worst_label = "-";
  std::int64_t violations = 0;
  std::int64_t replica_served = 0;
  bool all_offloaded = true;

  for (const core::Backend backend : {core::Backend::kSim, core::Backend::kThreads}) {
    Table tab(std::string(core::to_string(backend)) +
              " backend: fleet pulls/s by sync mode, head-only vs r=2 offload");
    tab.add_row({"sync", "head_only", "offloaded", "ratio", "replica_share", "violations"});
    for (const ModeCase& mode : kModes) {
      auto head_cfg = base_cfg(backend);
      head_cfg.sync = mode.sync;
      head_cfg.read.prefer_replica = false;
      const auto head = core::run_experiment(head_cfg);

      auto off_cfg = base_cfg(backend);
      off_cfg.sync = mode.sync;
      off_cfg.read.prefer_replica = true;
      const auto off = core::run_experiment(off_cfg);

      const double ratio =
          head.fleet_throughput > 0.0 ? off.fleet_throughput / head.fleet_throughput : 0.0;
      const double share =
          off.fleet_pulls > 0
              ? static_cast<double>(off.replica_reads_served) /
                    static_cast<double>(off.replica_reads_served + off.head_reads_served)
              : 0.0;
      violations += head.read_violations + off.read_violations;
      replica_served += off.replica_reads_served;
      if (off.replica_reads_served == 0) all_offloaded = false;
      const std::string label =
          std::string(core::to_string(backend)) + "/" + mode.name;
      if (worst_label == "-" || ratio < worst_ratio) {
        worst_ratio = ratio;
        worst_label = label;
      }
      tab.add(mode.name, bench::fmt(head.fleet_throughput, 0),
              bench::fmt(off.fleet_throughput, 0), bench::fmt(ratio, 2) + "x",
              bench::fmt(100.0 * share, 1) + "%",
              static_cast<int>(head.read_violations + off.read_violations));
    }
    std::printf("%s\n", tab.to_ascii().c_str());
    tab.write_csv(bench::csv_path(std::string("ablation_read_offload_") +
                                  core::to_string(backend)));
  }

  bench::report("r=2 read offload speedup (worst mode)", ">= 1.7x vs head-only",
                bench::fmt(worst_ratio, 2) + "x at " + worst_label, worst_ratio >= 1.7);
  bench::report("staleness-bound violations", "0 across 7 modes x 2 backends",
                std::to_string(violations), violations == 0);
  bench::report("replicas actually serve reads", "> 0 replica-served in every offload run",
                std::to_string(replica_served) + " total", all_offloaded);
  return (worst_ratio >= 1.7 && violations == 0 && all_offloaded) ? 0 : 1;
}
