// Figure 9: number of delayed pull requests (DPRs) per 100 iterations when
// training AlexNet on CIFAR-10 with 64 workers. Paired models share the same
// regret bound (s' = s + 1/c - 1):
//   A: PSSP(s=3, c=1/2)  vs B: SSP(s'=4)
//   C: PSSP(s=3, c=1/3)  vs D: SSP(s'=5)
//   E: PSSP(s=3, c=1/5)  vs F: SSP(s'=7)
//   G: PSSP(s=3, c=1/10) vs H: SSP(s'=12)
// Paper: PSSP cuts up to 97.1% of DPRs and 28.5% of training time (G vs H,
// soft barrier); under lazy execution PSSP still saves up to 70.7% of DPRs.
#include <cstdio>

#include "bench_util.h"
#include "common/config.h"

int main(int argc, char** argv) {
  using namespace fluentps;
  const auto args = Config::from_args(argc, argv);
  const auto iters = args.get_int("iters", 250);
  const std::uint32_t workers = static_cast<std::uint32_t>(args.get_int("workers", 64));

  bench::print_banner("Fig 9 | DPRs per 100 iterations: PSSP(s=3,c) vs SSP(s'=s+1/c-1), N=64",
                      "PSSP reduces up to 97.1% DPRs and 28.5% time under the soft barrier; "
                      "up to 70.7% DPRs under lazy execution");

  struct Pair {
    const char* pssp_id;
    const char* ssp_id;
    double c;
    std::int64_t s_prime;
  };
  const Pair pairs[] = {{"A", "B", 0.5, 4},
                        {"C", "D", 1.0 / 3.0, 5},
                        {"E", "F", 0.2, 7},
                        {"G", "H", 0.1, 12}};

  Table table("Fig 9: DPRs per 100 iterations and total time");
  table.add_row({"mode", "model", "dprs_per_100it", "total_s", "final_acc"});

  double best_dpr_red_soft = 0.0, best_time_red_soft = 0.0, best_dpr_red_lazy = 0.0;
  double lazy_ssp_same_s_dprs = 0.0, lazy_best_pssp_dprs = 1e18;

  for (const auto dpr_mode : {ps::DprMode::kSoftBarrier, ps::DprMode::kLazy}) {
    const char* mode_name = ps::to_string(dpr_mode);
    if (dpr_mode == ps::DprMode::kLazy) {
      // Reference for the lazy claim: SSP at the same s = 3.
      auto cfg = bench::alexnet_like(workers, 1, iters);
      cfg.sync = {.kind = "ssp", .staleness = 3};
      cfg.dpr_mode = dpr_mode;
      const auto r = core::run_experiment(cfg);
      lazy_ssp_same_s_dprs = static_cast<double>(r.dpr_total);
      table.add(std::string(mode_name), std::string("ref: ") + cfg.sync.label(),
                bench::fmt(r.dprs_per_100_iters, 1), bench::fmt(r.total_time, 2),
                bench::fmt(r.final_accuracy, 3));
    }
    for (const auto& p : pairs) {
      auto run = [&](const ps::SyncModelSpec& sync, const char* id) {
        auto cfg = bench::alexnet_like(workers, 1, iters);
        cfg.sync = sync;
        cfg.dpr_mode = dpr_mode;
        const auto r = core::run_experiment(cfg);
        table.add(std::string(mode_name),
                  std::string(id) + ": " + sync.label(), bench::fmt(r.dprs_per_100_iters, 1),
                  bench::fmt(r.total_time, 2), bench::fmt(r.final_accuracy, 3));
        return r;
      };
      const auto pssp =
          run({.kind = "pssp", .staleness = 3, .prob = p.c}, p.pssp_id);
      const auto ssp = run({.kind = "ssp", .staleness = p.s_prime}, p.ssp_id);
      if (ssp.dpr_total > 0) {
        const double dpr_red = 1.0 - static_cast<double>(pssp.dpr_total) /
                                         static_cast<double>(ssp.dpr_total);
        const double time_red = 1.0 - pssp.total_time / ssp.total_time;
        if (dpr_mode == ps::DprMode::kSoftBarrier) {
          best_dpr_red_soft = std::max(best_dpr_red_soft, dpr_red);
          best_time_red_soft = std::max(best_time_red_soft, time_red);
        } else {
          best_dpr_red_lazy = std::max(best_dpr_red_lazy, dpr_red);
        }
      }
      if (dpr_mode == ps::DprMode::kLazy) {
        lazy_best_pssp_dprs = std::min(lazy_best_pssp_dprs, static_cast<double>(pssp.dpr_total));
      }
    }
  }
  // The paper's lazy-execution claim compares PSSP against the SSP model at
  // the same staleness ("the PSSP can still save 70.7% DPRs in the SSP model").
  best_dpr_red_lazy = std::max(
      best_dpr_red_lazy,
      lazy_ssp_same_s_dprs > 0.0 ? 1.0 - lazy_best_pssp_dprs / lazy_ssp_same_s_dprs : 0.0);

  std::printf("%s\n", table.to_ascii().c_str());
  table.write_csv(bench::csv_path("fig09_dpr_pssp_vs_ssp"));

  bench::report("max DPR reduction (soft barrier)", "97.1%",
                bench::fmt(100 * best_dpr_red_soft, 1) + "%", best_dpr_red_soft > 0.4);
  bench::report("max time reduction (soft barrier)", "28.5%",
                bench::fmt(100 * best_time_red_soft, 1) + "%", best_time_red_soft > 0.0);
  bench::report("max DPR reduction (lazy execution)", "70.7%",
                bench::fmt(100 * best_dpr_red_lazy, 1) + "%", best_dpr_red_lazy > 0.2);
  return 0;
}
