// Ablation: Gaia-style significance filter (§V-B cites Gaia's finding that
// "over 95% of updates produce insignificant gradients"). Sweeps the push
// significance threshold and reports filtered-push fraction, bytes on the
// wire, wall time and final accuracy — the traffic/quality trade-off.
#include <cstdio>

#include "bench_util.h"
#include "common/config.h"

int main(int argc, char** argv) {
  using namespace fluentps;
  const auto args = Config::from_args(argc, argv);
  const auto iters = args.get_int("iters", 250);

  bench::print_banner("Ablation | Significance-filtered pushes (Gaia-style)",
                      "most late-training updates are insignificant: filtering them cuts "
                      "traffic with little accuracy cost until the threshold gets aggressive");

  Table table("Significance filter sweep (AlexNet-like, N=32, SSP s=3, lazy)");
  table.add_row({"threshold", "filtered_pushes", "filtered_frac", "bytes_MB", "total_s", "acc"});

  double base_bytes = 0.0, base_acc = 0.0;
  double mild_bytes = 0.0, mild_acc = 0.0;
  for (const double threshold : {0.0, 0.02, 0.05, 0.1, 0.2}) {
    auto cfg = bench::alexnet_like(32, 2, iters);
    cfg.sync.kind = "ssp";
    cfg.sync.staleness = 3;
    cfg.push_significance_threshold = threshold;
    bench::apply_telemetry_args(args, cfg);
    const auto r = core::run_experiment(cfg);
    bench::write_prometheus(r, "ablation_significance_filter");
    const double total_pushes = static_cast<double>(cfg.num_workers) *
                                static_cast<double>(cfg.max_iters);
    table.add(bench::fmt(threshold, 3), std::to_string(r.pushes_filtered),
              bench::fmt(static_cast<double>(r.pushes_filtered) / total_pushes, 3),
              bench::fmt(r.bytes_total / 1e6, 1), bench::fmt(r.total_time, 2),
              bench::fmt(r.final_accuracy, 3));
    if (threshold == 0.0) {
      base_bytes = r.bytes_total;
      base_acc = r.final_accuracy;
    } else if (threshold == 0.05) {
      mild_bytes = r.bytes_total;
      mild_acc = r.final_accuracy;
    }
  }

  std::printf("%s\n", table.to_ascii().c_str());
  table.write_csv(bench::csv_path("ablation_significance_filter"));

  bench::report("traffic saved at threshold 0.05", "large fraction of pushes insignificant",
                bench::reduction(base_bytes, mild_bytes), mild_bytes < base_bytes);
  bench::report("accuracy cost at threshold 0.05", "small",
                bench::fmt(base_acc - mild_acc, 3), mild_acc > base_acc - 0.08);
  return 0;
}
