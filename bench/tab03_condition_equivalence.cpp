// Table III: every synchronization model is just a (pull condition, push
// condition) pair. This bench drives one SyncEngine per model through an
// identical randomized cluster schedule and verifies the advertised
// equivalences trace-for-trace:
//   SSP(s=0)  == BSP          PSSP(P=1) == SSP         PSSP(P=0) == ASP
//   SSP(s=inf)== ASP          drop(Nt=N) == BSP
#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "ps/sync_engine.h"

namespace {

using namespace fluentps;
using namespace fluentps::ps;

struct Trace {
  std::int64_t dprs = 0;
  std::int64_t v_train = 0;
  std::vector<std::uint64_t> releases;
  std::vector<bool> pull_results;
};

Trace drive(const SyncModelSpec& spec, std::uint32_t n, std::int64_t iters, std::uint64_t seed) {
  SyncEngine::Spec es;
  es.num_workers = n;
  es.mode = DprMode::kLazy;
  es.model = make_sync_model(spec, n);
  es.seed = seed;
  SyncEngine engine(std::move(es));
  Trace t;
  Rng rng(seed, 0xABCD);
  std::vector<std::int64_t> progress(n, 0);
  std::uint64_t req = 1;
  for (std::int64_t step = 0; step < iters * n; ++step) {
    // Biased schedule: worker 0 advances half as often (a straggler).
    auto w = static_cast<std::uint32_t>(rng.uniform_u64(n + n / 2));
    if (w >= n) {
      if (rng.bernoulli(0.5)) continue;
      w = 0;
    }
    const auto rel = engine.on_push(w, progress[w]);
    t.releases.insert(t.releases.end(), rel.begin(), rel.end());
    t.pull_results.push_back(engine.on_pull(w, progress[w], req++));
    ++progress[w];
  }
  t.dprs = engine.dpr_total();
  t.v_train = engine.v_train();
  return t;
}

bool same(const Trace& a, const Trace& b) {
  return a.dprs == b.dprs && a.v_train == b.v_train && a.releases == b.releases &&
         a.pull_results == b.pull_results;
}

}  // namespace

int main() {
  bench::print_banner("Table III | Flexible synchronization via pull/push conditions",
                      "one engine + condition pairs == BSP/ASP/SSP/DSPS/drop/PSSP, with the "
                      "documented degenerate-case equivalences");

  const std::uint32_t n = 6;
  const std::int64_t iters = 200;
  const std::uint64_t seed = 99;

  struct Check {
    const char* lhs;
    const char* rhs;
    SyncModelSpec a;
    SyncModelSpec b;
  };
  const Check checks[] = {
      {"SSP(s=0)", "BSP", {.kind = "ssp", .staleness = 0}, {.kind = "bsp"}},
      {"SSP(s=1e9)", "ASP", {.kind = "ssp", .staleness = 1000000000}, {.kind = "asp"}},
      {"PSSP(P=1)", "SSP(s=3)", {.kind = "pssp", .staleness = 3, .prob = 1.0},
       {.kind = "ssp", .staleness = 3}},
      {"PSSP(P=0)", "ASP", {.kind = "pssp", .staleness = 3, .prob = 0.0}, {.kind = "asp"}},
      {"drop(Nt=N)", "BSP", {.kind = "drop", .drop_nt = n}, {.kind = "bsp"}},
  };

  fluentps::Table table("Table III equivalence checks (identical randomized schedule)");
  table.add_row({"model A", "model B", "dprs A", "dprs B", "identical trace"});
  bool all_ok = true;
  for (const auto& c : checks) {
    const auto ta = drive(c.a, n, iters, seed);
    const auto tb = drive(c.b, n, iters, seed);
    const bool ok = same(ta, tb);
    all_ok = all_ok && ok;
    table.add(std::string(c.lhs), std::string(c.rhs), std::to_string(ta.dprs),
              std::to_string(tb.dprs), ok ? std::string("YES") : std::string("NO"));
  }

  // And the distinct models must actually behave differently.
  fluentps::Table distinct("Distinct models produce distinct synchronization behaviour");
  distinct.add_row({"model", "dprs", "v_train"});
  const SyncModelSpec zoo[] = {
      {.kind = "bsp"},
      {.kind = "asp"},
      {.kind = "ssp", .staleness = 3},
      {.kind = "dsps", .staleness = 3},
      {.kind = "drop", .drop_nt = 4},
      {.kind = "pssp", .staleness = 3, .prob = 0.5},
      {.kind = "pssp_dynamic", .staleness = 3, .alpha = 0.8},
  };
  for (const auto& spec : zoo) {
    const auto t = drive(spec, n, iters, seed);
    distinct.add(spec.label(), std::to_string(t.dprs), std::to_string(t.v_train));
  }

  std::printf("%s\n", table.to_ascii().c_str());
  std::printf("%s\n", distinct.to_ascii().c_str());
  table.write_csv(bench::csv_path("tab03_condition_equivalence"));

  bench::report("Table III degenerate equivalences", "hold by construction",
                all_ok ? "all identical traces" : "MISMATCH", all_ok);
  return all_ok ? 0 : 1;
}
