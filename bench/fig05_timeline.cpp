// Figure 5: the time-line diagram of non-overlap vs overlap synchronization.
//
// Reproduced as measured data: a 4-worker / 4-server cluster with one slow
// worker runs three traced iterations under (a) the PS-Lite protocol (push ->
// acks -> progress report -> scheduler grant -> pull) and (b) FluentPS
// overlap (push and pull in flight together, per-server release). The bench
// prints each worker's [compute | sync] bands and the per-iteration sync
// window; overlap's sync bands are shorter because the pull of one shard
// overlaps the pushes of others and no scheduler round-trip exists.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "common/config.h"

int main(int argc, char** argv) {
  using namespace fluentps;
  const auto args = Config::from_args(argc, argv);
  const auto iters = args.get_int("iters", 3);

  bench::print_banner("Fig 5 | Non-overlap vs overlap synchronization timeline",
                      "overlap removes the scheduler round-trip and lets the push and pull "
                      "processes of different servers overlap");

  Table timeline("Per-worker timeline (seconds; W3 is the slow worker)");
  timeline.add_row({"system", "worker", "iter", "compute", "sync(push..pull done)", "sync_s"});

  double total_sync[2] = {0.0, 0.0};
  for (int sys = 0; sys < 2; ++sys) {
    auto cfg = bench::resnet56_comm_heavy(4, 4, iters);
    cfg.arch = sys == 0 ? core::Arch::kPsLite : core::Arch::kFluentPS;
    cfg.sync.kind = "bsp";
    cfg.trace_iters = iters;
    cfg.compute.kind = "persistent";  // worker 0 fixed-slow: a visible straggler
    cfg.compute.slowdown = 2.5;
    cfg.compute.sigma = 0.05;
    const auto r = core::run_experiment(cfg);
    auto trace = r.trace;
    std::sort(trace.begin(), trace.end(), [](const auto& a, const auto& b) {
      if (a.worker != b.worker) return a.worker < b.worker;
      return a.iter < b.iter;
    });
    const char* name = sys == 0 ? "pslite" : "fluentps";
    for (const auto& t : trace) {
      timeline.add(std::string(name), std::to_string(t.worker), std::to_string(t.iter),
                   "[" + bench::fmt(t.compute_start, 3) + " .. " + bench::fmt(t.compute_end, 3) +
                       "]",
                   "[" + bench::fmt(t.compute_end, 3) + " .. " + bench::fmt(t.sync_end, 3) + "]",
                   bench::fmt(t.sync_end - t.compute_end, 3));
      total_sync[sys] += t.sync_end - t.compute_end;
    }
  }

  std::printf("%s\n", timeline.to_ascii().c_str());
  timeline.write_csv(bench::csv_path("fig05_timeline"));

  bench::report("overlap shortens the sync window", "pull overlaps push; no scheduler RTT",
                bench::fmt(total_sync[1], 2) + "s vs " + bench::fmt(total_sync[0], 2) + "s total",
                total_sync[1] < total_sync[0]);
  return 0;
}
