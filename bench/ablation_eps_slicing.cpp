// Ablation (Section III-A, DESIGN.md D4): Elastic Parameter Slicing.
//  (1) byte balance of default vs EPS placement across chunk sizes;
//  (2) end-to-end effect of the placement on communication time (overlap
//      synchronization held fixed so only slicing varies);
//  (3) rebalancing cost when the server set changes (bytes moved vs optimal).
#include <cstdio>

#include "bench_util.h"
#include "common/config.h"
#include "ml/models/resmlp.h"
#include "ps/slicing.h"

int main(int argc, char** argv) {
  using namespace fluentps;
  const auto args = Config::from_args(argc, argv);
  const auto iters = args.get_int("iters", 80);

  bench::print_banner("Ablation | Elastic Parameter Slicing",
                      "EPS balances bytes per server (imbalance -> 1.0), cuts communication "
                      "time under overlap sync, and rebalances with near-minimal movement");

  // (1) Placement balance.
  const ml::ResMlp model(512, 32, 27, 10);  // stem-heavy: 22% of bytes in one tensor
  const auto layers = model.layer_sizes();
  Table balance("Placement imbalance (max shard / mean shard), M=8");
  balance.add_row({"slicer", "chunk", "imbalance", "num_slices"});
  {
    ps::DefaultSlicer dflt;
    const auto sh = dflt.shard(layers, 8);
    std::size_t slices = 0;
    for (const auto& s : sh.shards) slices += s.slices.size();
    balance.add(std::string("default"), std::string("layer"), bench::fmt(sh.imbalance(), 3),
                std::to_string(slices));
  }
  double eps_imbalance_1k = 0.0;
  for (const std::size_t chunk : {8192u, 2048u, 1024u, 256u, 64u}) {
    ps::EpsSlicer eps(chunk);
    const auto sh = eps.shard(layers, 8);
    std::size_t slices = 0;
    for (const auto& s : sh.shards) slices += s.slices.size();
    balance.add(std::string("eps"), std::to_string(chunk), bench::fmt(sh.imbalance(), 3),
                std::to_string(slices));
    if (chunk == 1024u) eps_imbalance_1k = sh.imbalance();
  }
  std::printf("%s\n", balance.to_ascii().c_str());

  // (2) End-to-end communication time, overlap sync fixed.
  Table e2e("Communication time under overlap sync (ResNet-56 comm-heavy, N=32, M=8, BSP)");
  e2e.add_row({"slicer", "comm_s", "total_s", "max_server_ingress_busy_s"});
  double comm_default = 0.0, comm_eps = 0.0;
  for (const char* slicer : {"default", "eps"}) {
    auto cfg = bench::resnet56_comm_heavy(32, 8, iters);
    cfg.sync.kind = "bsp";
    cfg.slicer = slicer;
    bench::apply_telemetry_args(args, cfg);
    const auto r = core::run_experiment(cfg);
    bench::write_prometheus(r, "ablation_eps_slicing");
    e2e.add(std::string(slicer), bench::fmt(r.comm_time, 2), bench::fmt(r.total_time, 2),
            bench::fmt(r.extra.at("max_server_ingress_busy"), 2));
    (std::string(slicer) == "default" ? comm_default : comm_eps) = r.comm_time;
  }
  std::printf("%s\n", e2e.to_ascii().c_str());

  // (3) Rebalance movement: growing 4 -> 5 servers should move about 1/5 of
  // the bytes (everything the new server receives), not re-shuffle the world.
  ps::EpsSlicer eps(1024);
  const auto old_sh = eps.shard(layers, 4);
  std::vector<ps::EpsSlicer::Migration> plan;
  const auto new_sh = eps.rebalance(old_sh, 5, &plan);
  std::size_t moved = 0;
  for (const auto& m : plan) moved += m.slice.length;
  const double moved_frac = static_cast<double>(moved) / static_cast<double>(new_sh.num_params);
  Table reb("Rebalance 4 -> 5 servers");
  reb.add_row({"bytes_moved_frac", "ideal_frac", "new_imbalance"});
  reb.add(bench::fmt(moved_frac, 3), bench::fmt(0.2, 3), bench::fmt(new_sh.imbalance(), 3));
  std::printf("%s\n", reb.to_ascii().c_str());
  balance.write_csv(bench::csv_path("ablation_eps_slicing"));

  bench::report("EPS placement balance (chunk=1024)", "near 1.0",
                bench::fmt(eps_imbalance_1k, 3), eps_imbalance_1k < 1.1);
  bench::report("EPS cuts comm time vs default", "up to 55%",
                bench::reduction(comm_default, comm_eps), comm_eps < comm_default);
  bench::report("rebalance moves bounded bytes", "~new server's share",
                bench::fmt(100 * moved_frac, 1) + "%", moved_frac < 0.5);
  return 0;
}
