// Ablation for DESIGN.md D7: the server-side DPR cost model.
//
// The paper's central claim is that *synchronization frequency* costs time.
// Two mechanisms turn DPR volume into wall-clock in this system:
//  (1) burst queueing on the server's network link — the soft barrier
//      releases whole cohorts at once, and on a link-bound workload (this
//      one) that alone gives PSSP a time advantage even at zero handler
//      cost;
//  (2) serial DPR handling on the server (`dpr_overhead_seconds`) — a
//      *threshold* effect: it binds only once the storm's busy time exceeds
//      the V_train advance period, after which SSP's time inflates while
//      PSSP's (10x fewer DPRs) does not.
// The sweep exposes mechanism (2) on top of (1): speedup is flat until the
// cost crosses the threshold, then grows.
#include <cstdio>

#include "bench_util.h"
#include "common/config.h"

int main(int argc, char** argv) {
  using namespace fluentps;
  const auto args = Config::from_args(argc, argv);
  const auto iters = args.get_int("iters", 250);

  bench::print_banner("Ablation | Server-side DPR cost model (DESIGN.md D7)",
                      "per-DPR handler cost is a threshold mechanism: once the soft-barrier "
                      "storm's busy time exceeds the advance period, SSP's time inflates");

  Table table("SSP(3) vs PSSP(3, c=0.1), soft barrier, N=64, by per-DPR cost");
  table.add_row({"dpr_cost_ms", "ssp_time_s", "pssp_time_s", "pssp_speedup", "ssp_dprs/100",
                 "pssp_dprs/100"});

  double speedup_at_zero = 0.0, speedup_at_max = 0.0;
  for (const double cost_ms : {0.0, 0.5, 1.0, 2.0, 4.0}) {
    auto ssp_cfg = bench::alexnet_like(64, 1, iters);
    ssp_cfg.sync = {.kind = "ssp", .staleness = 3};
    ssp_cfg.dpr_mode = ps::DprMode::kSoftBarrier;
    ssp_cfg.dpr_overhead_seconds = cost_ms * 1e-3;
    bench::apply_telemetry_args(args, ssp_cfg);
    const auto ssp = core::run_experiment(ssp_cfg);
    bench::write_prometheus(ssp, "ablation_cost_model");

    auto pssp_cfg = ssp_cfg;
    pssp_cfg.sync = {.kind = "pssp", .staleness = 3, .prob = 0.1};
    const auto pssp = core::run_experiment(pssp_cfg);

    const double speedup = ssp.total_time / pssp.total_time;
    table.add(bench::fmt(cost_ms, 2), bench::fmt(ssp.total_time, 2),
              bench::fmt(pssp.total_time, 2), bench::fmt(speedup, 2) + "x",
              bench::fmt(ssp.dprs_per_100_iters, 0), bench::fmt(pssp.dprs_per_100_iters, 0));
    if (cost_ms == 0.0) speedup_at_zero = speedup;
    if (cost_ms == 4.0) speedup_at_max = speedup;
  }

  std::printf("%s\n", table.to_ascii().c_str());
  table.write_csv(bench::csv_path("ablation_cost_model"));

  bench::report("PSSP gains even at zero handler cost", "burst-queueing mechanism",
                bench::fmt(speedup_at_zero, 2) + "x", speedup_at_zero > 1.1);
  bench::report("handler cost adds a threshold effect", "speedup grows past the threshold",
                bench::fmt(speedup_at_zero, 2) + "x at 0ms -> " + bench::fmt(speedup_at_max, 2) +
                    "x at 4ms",
                speedup_at_max > speedup_at_zero);
  return 0;
}
