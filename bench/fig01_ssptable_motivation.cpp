// Figure 1 (motivation): test accuracy of AlexNet on CIFAR-10 with the same
// mini-batch size at different cluster scales under PMLS-Caffe (Bösen /
// SSPtable). The paper observes <20% accuracy once N >= 8 while 2-4 workers
// converge normally; our SSPtable stale-cache baseline reproduces the
// collapse shape (see src/baselines/ssptable_cache.h for the model).
#include <cstdio>

#include "bench_util.h"
#include "common/config.h"

int main(int argc, char** argv) {
  using namespace fluentps;
  const auto args = Config::from_args(argc, argv);
  const auto iters = args.get_int("iters", 400);

  bench::print_banner("Fig 1 | SSPtable (PMLS-Caffe) accuracy vs cluster size",
                      "8- and 16-worker runs show far lower accuracy than 2-4 workers "
                      "at the same iteration under SSP(s=3)");

  Table table("Fig 1: accuracy vs iteration (SSPtable baseline, SSP s=3)");
  table.add_row({"workers", "iter", "accuracy"});
  Table finals("Fig 1 finals");
  finals.add_row({"workers", "final_accuracy"});

  double acc_small = 0.0, acc_large = 1.0;
  for (const std::uint32_t n : {2u, 4u, 8u, 16u}) {
    auto cfg = bench::alexnet_like(n, 1, iters);
    cfg.arch = core::Arch::kSspTable;
    cfg.sync.kind = "ssp";
    cfg.sync.staleness = 3;
    // Paper: "the same mini-batch size at different cluster scales" — fix the
    // GLOBAL batch so every cluster size sees the same samples per iteration.
    cfg.batch_size = std::max<std::size_t>(4, 256 / n);
    cfg.eval_every = iters / 8;
    const auto r = core::run_experiment(cfg);
    for (const auto& pt : r.curve) {
      table.add(std::to_string(n), std::to_string(pt.iter), bench::fmt(pt.accuracy, 3));
    }
    finals.add(std::to_string(n), bench::fmt(r.final_accuracy, 3));
    if (n <= 4) acc_small = std::max(acc_small, r.final_accuracy);
    if (n >= 8) acc_large = std::min(acc_large, r.final_accuracy);
  }

  std::printf("%s\n", finals.to_ascii().c_str());
  table.write_csv(bench::csv_path("fig01_ssptable_motivation"));
  std::printf("curve CSV: %s\n", bench::csv_path("fig01_ssptable_motivation").c_str());

  bench::report("SSPtable accuracy, 2-4 workers", "converges (~0.6-0.75)",
                bench::fmt(acc_small, 3), acc_small > 0.45);
  bench::report("SSPtable accuracy, 8-16 workers", "collapses (<0.20)", bench::fmt(acc_large, 3),
                acc_large < acc_small - 0.15);
  return 0;
}
