// Figure 11: same comparison as Fig 10 at 128 workers (the paper deploys 128
// Caffe containers via Kubernetes; the DES scales natively). Paper: PSSP
// (P=0.3/0.5) achieves ~3.9% higher accuracy than ASP, and PSSP's advantage
// grows with the worker count.
#include <cstdio>

#include "bench_util.h"
#include "common/config.h"

int main(int argc, char** argv) {
  using namespace fluentps;
  const auto args = Config::from_args(argc, argv);
  const auto iters = args.get_int("iters", 300);

  bench::print_banner("Fig 11 | Accuracy vs time by sync model (N=128, 8 servers)",
                      "PSSP(0.3) best accuracy, +3.9% over ASP; PSSP advantage grows with N");

  struct ModelRow {
    std::string name;
    ps::SyncModelSpec sync;
  };
  const ModelRow rows[] = {
      {"bsp", {.kind = "bsp"}},
      {"ssp(s=3)", {.kind = "ssp", .staleness = 3}},
      {"asp", {.kind = "asp"}},
      {"pssp(0.3)", {.kind = "pssp", .staleness = 3, .prob = 0.3}},
      {"pssp(0.5)", {.kind = "pssp", .staleness = 3, .prob = 0.5}},
  };

  Table curve("Fig 11: accuracy vs time");
  curve.add_row({"model", "time_s", "accuracy"});
  Table summary("Fig 11 summary");
  summary.add_row({"model", "total_s", "final_acc", "dprs_per_100it"});

  double asp_acc = 0.0, best_pssp_acc = 0.0;
  for (const auto& row : rows) {
    auto cfg = bench::alexnet_like(128, 8, iters);
    // Large clusters amplify staleness damage: keep the paper's lr regime.
    cfg.sync = row.sync;
    cfg.eval_every = iters / 10;
    const auto r = core::run_experiment(cfg);
    for (const auto& pt : r.curve) {
      curve.add(row.name, bench::fmt(pt.time, 1), bench::fmt(pt.accuracy, 3));
    }
    summary.add(row.name, bench::fmt(r.total_time, 2), bench::fmt(r.final_accuracy, 3),
                bench::fmt(r.dprs_per_100_iters, 1));
    if (row.name == "asp") asp_acc = r.final_accuracy;
    if (row.name.starts_with("pssp")) best_pssp_acc = std::max(best_pssp_acc, r.final_accuracy);
  }

  std::printf("%s\n", summary.to_ascii().c_str());
  curve.write_csv(bench::csv_path("fig11_models_128w"));

  bench::report("PSSP best accuracy vs ASP at N=128", "+3.9%",
                "+" + bench::fmt(100 * (best_pssp_acc - asp_acc), 1) + "%",
                best_pssp_acc >= asp_acc);
  return 0;
}
