// Ablation for DESIGN.md D8: persistent worker heterogeneity.
//
// With iid-only compute noise, worker progress differences random-walk and
// rarely fill the staleness window, so SSP hardly ever blocks and none of
// the paper's DPR phenomena exist. Persistent per-worker pace factors
// (heterogeneous hardware / noisy neighbours) saturate the window: fast
// workers park at the bound and the soft barrier "appears frequently"
// (§II-B). This sweep shows DPR volume and the BSP-vs-ASP time gap as
// functions of the persistent spread.
#include <cstdio>

#include "bench_util.h"
#include "common/config.h"

int main(int argc, char** argv) {
  using namespace fluentps;
  const auto args = Config::from_args(argc, argv);
  const auto iters = args.get_int("iters", 200);

  bench::print_banner("Ablation | Persistent worker heterogeneity (DESIGN.md D8)",
                      "iid-only noise never saturates the staleness window; persistent pace "
                      "spread produces the paper's soft-barrier storms");

  Table table("SSP(3) soft barrier, N=64, by persistent spread (worker_sigma)");
  table.add_row({"worker_sigma", "ssp_dprs/100", "blocked_frac", "bsp_time_s", "asp_time_s",
                 "bsp/asp"});

  double dprs_iid = 0.0, dprs_hetero = 0.0;
  for (const double wsigma : {0.0, 0.1, 0.25, 0.5}) {
    auto cfg = bench::alexnet_like(64, 1, iters);
    cfg.sync = {.kind = "ssp", .staleness = 3};
    cfg.dpr_mode = ps::DprMode::kSoftBarrier;
    cfg.compute.worker_sigma = wsigma;
    bench::apply_telemetry_args(args, cfg);
    const auto ssp = core::run_experiment(cfg);
    bench::write_prometheus(ssp, "ablation_heterogeneity");

    auto bsp_cfg = cfg;
    bsp_cfg.sync = {.kind = "bsp"};
    const auto bsp = core::run_experiment(bsp_cfg);
    auto asp_cfg = cfg;
    asp_cfg.sync = {.kind = "asp"};
    const auto asp = core::run_experiment(asp_cfg);

    // Fraction of pulls that became DPRs: N pulls per iteration.
    const double blocked =
        static_cast<double>(ssp.dpr_total) / (64.0 * static_cast<double>(iters));
    table.add(bench::fmt(wsigma, 2), bench::fmt(ssp.dprs_per_100_iters, 0),
              bench::fmt(blocked, 2), bench::fmt(bsp.total_time, 1),
              bench::fmt(asp.total_time, 1), bench::fmt(bsp.total_time / asp.total_time, 2));
    if (wsigma == 0.0) dprs_iid = ssp.dprs_per_100_iters;
    if (wsigma == 0.5) dprs_hetero = ssp.dprs_per_100_iters;
  }

  std::printf("%s\n", table.to_ascii().c_str());
  table.write_csv(bench::csv_path("ablation_heterogeneity"));

  // The blocked fraction rises monotonically toward full saturation with the
  // persistent spread (the transient spikes in the base model already cause
  // partial saturation at sigma = 0).
  bench::report("persistent spread saturates the window", "DPR volume grows with spread",
                bench::fmt(dprs_iid, 0) + " -> " + bench::fmt(dprs_hetero, 0) + " DPRs/100it",
                dprs_hetero > dprs_iid * 1.2);
  return 0;
}
