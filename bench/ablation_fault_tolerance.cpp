// Ablation for the fault subsystem: what does fault tolerance cost, and does
// recovery actually preserve training?
//
// Two sweeps on the ssp(3) workload:
//  (1) drop-rate sweep — message loss vs total time, retransmission volume
//      and final accuracy. The at-least-once layer converts loss into
//      latency (retry round-trips) rather than divergence: accuracy stays
//      near the pristine run while time degrades gracefully.
//  (2) crash-count sweep — 0/1/2/3 mid-run server crash-restarts under 5%
//      loss. Each crash rolls the shard back to the latest checkpoint and
//      replays rolled-back sync counts via the kRecover handshake, so the
//      run completes with bounded retries no matter how many crashes hit.
// The protocol-overhead row (reliability on, zero faults) isolates the cost
// of acks + sequence numbers alone.
#include <cstdio>

#include "bench_util.h"
#include "common/config.h"

int main(int argc, char** argv) {
  using namespace fluentps;
  const auto args = Config::from_args(argc, argv);
  const auto iters = args.get_int("iters", 250);
  const auto workers = static_cast<std::uint32_t>(args.get_int("workers", 16));

  bench::print_banner("Ablation | Fault tolerance: loss, crashes, recovery cost",
                      "the reliability layer turns message loss and server crashes into "
                      "bounded extra latency instead of divergence or deadlock");

  auto base = bench::alexnet_like(workers, 2, iters);
  base.sync = {.kind = "ssp", .staleness = 3};
  base.retry.initial_timeout = 0.05;
  base.retry.max_timeout = 1.0;
  bench::apply_telemetry_args(args, base);

  const auto pristine = core::run_experiment(base);
  bench::write_prometheus(pristine, "ablation_fault_tolerance");

  // --- sweep 1: drop rate ------------------------------------------------
  Table drops("ssp(3), N=" + std::to_string(workers) + ", by drop rate");
  drops.add_row({"drop", "time_s", "slowdown", "retries", "dedup_hits", "accuracy"});
  drops.add("0.00 (raw)", bench::fmt(pristine.total_time, 2), "1.00x", 0, 0,
            bench::fmt(pristine.final_accuracy, 3));

  auto overhead_cfg = base;
  overhead_cfg.force_reliability = true;
  const auto overhead = core::run_experiment(overhead_cfg);
  drops.add("0.00 (reliable)", bench::fmt(overhead.total_time, 2),
            bench::fmt(overhead.total_time / pristine.total_time, 2) + "x",
            static_cast<int>(overhead.worker_retries),
            static_cast<int>(overhead.server_dedup_hits),
            bench::fmt(overhead.final_accuracy, 3));

  double acc_at_10 = 0.0;
  for (const double drop : {0.01, 0.05, 0.10, 0.20}) {
    auto cfg = base;
    cfg.faults.link.drop_prob = drop;
    const auto r = core::run_experiment(cfg);
    drops.add(bench::fmt(drop, 2), bench::fmt(r.total_time, 2),
              bench::fmt(r.total_time / pristine.total_time, 2) + "x",
              static_cast<int>(r.worker_retries), static_cast<int>(r.server_dedup_hits),
              bench::fmt(r.final_accuracy, 3));
    if (drop == 0.10) acc_at_10 = r.final_accuracy;
  }
  std::printf("%s\n", drops.to_ascii().c_str());
  drops.write_csv(bench::csv_path("ablation_fault_drop"));

  // --- sweep 2: crash count ----------------------------------------------
  Table crashes("ssp(3), 5% loss, by mid-run server crash-restarts");
  crashes.add_row({"crashes", "time_s", "retries", "recoveries", "dedup_hits", "accuracy"});
  double acc_3_crashes = 0.0;
  bool all_recovered = true;
  for (int k = 0; k <= 3; ++k) {
    auto cfg = base;
    cfg.faults.link.drop_prob = 0.05;
    cfg.faults.checkpoint_every = 0.2;
    // Stagger crashes across both servers through the first half of the run.
    for (int c = 0; c < k; ++c) {
      const double at = 0.3 + 0.5 * c;
      cfg.faults.crashes.push_back(
          {static_cast<std::uint32_t>(c % 2), at, at + 0.25});
    }
    const auto r = core::run_experiment(cfg);
    crashes.add(k, bench::fmt(r.total_time, 2), static_cast<int>(r.worker_retries),
                static_cast<int>(r.server_recoveries), static_cast<int>(r.server_dedup_hits),
                bench::fmt(r.final_accuracy, 3));
    all_recovered = all_recovered && r.server_recoveries == k && r.iterations == iters;
    if (k == 3) acc_3_crashes = r.final_accuracy;
  }
  std::printf("%s\n", crashes.to_ascii().c_str());
  crashes.write_csv(bench::csv_path("ablation_fault_crash"));

  bench::report("accuracy survives 10% loss", "loss becomes latency, not divergence",
                bench::fmt(acc_at_10, 3) + " vs " + bench::fmt(pristine.final_accuracy, 3) +
                    " pristine",
                acc_at_10 > pristine.final_accuracy - 0.1);
  bench::report("every crash recovers from checkpoint", "runs complete despite crashes",
                all_recovered ? "all runs completed, recoveries == crashes" : "MISSED RECOVERY",
                all_recovered);
  bench::report("training quality after 3 crash-restarts", "checkpoint rollback is survivable",
                bench::fmt(acc_3_crashes, 3), acc_3_crashes > 0.3);
  return 0;
}
