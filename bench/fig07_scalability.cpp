// Figure 7: test accuracy after a fixed iteration budget (paper: 4000 iters
// of AlexNet on CIFAR-10, SSP s=3) as the cluster grows. PMLS-Caffe collapses
// to 12.7-19% beyond 8 workers; FluentPS holds 75.9-76.7% even at 64 workers.
#include <cstdio>

#include "bench_util.h"
#include "common/config.h"

int main(int argc, char** argv) {
  using namespace fluentps;
  const auto args = Config::from_args(argc, argv);
  const auto iters = args.get_int("iters", 400);

  bench::print_banner("Fig 7 | Scalability: FluentPS vs PMLS-Caffe (SSP s=3)",
                      "FluentPS accuracy stays flat to 64 workers; PMLS-Caffe (SSPtable) "
                      "drops below 20% past 8 workers");

  Table table("Fig 7: final accuracy at fixed iteration budget");
  table.add_row({"workers", "fluentps", "pmls_caffe(ssptable)"});

  double fluent_min = 1.0, fluent_max = 0.0, pmls_large = 1.0, pmls_small = 0.0;
  for (const std::uint32_t n : {2u, 4u, 8u, 16u, 32u, 64u}) {
    auto fluent = bench::alexnet_like(n, 1, iters);
    fluent.sync.kind = "ssp";
    fluent.sync.staleness = 3;
    // Fixed global batch across cluster sizes (see fig01).
    fluent.batch_size = std::max<std::size_t>(4, 256 / n);
    const auto rf = core::run_experiment(fluent);

    auto pmls = fluent;
    pmls.arch = core::Arch::kSspTable;
    const auto rp = core::run_experiment(pmls);

    table.add(std::to_string(n), bench::fmt(rf.final_accuracy, 3),
              bench::fmt(rp.final_accuracy, 3));
    fluent_min = std::min(fluent_min, rf.final_accuracy);
    fluent_max = std::max(fluent_max, rf.final_accuracy);
    if (n >= 16) pmls_large = std::min(pmls_large, rp.final_accuracy);
    if (n <= 4) pmls_small = std::max(pmls_small, rp.final_accuracy);
  }

  std::printf("%s\n", table.to_ascii().c_str());
  table.write_csv(bench::csv_path("fig07_scalability"));

  bench::report("FluentPS accuracy flat with N", "75.9-76.7% at N=64",
                bench::fmt(fluent_min, 3) + "-" + bench::fmt(fluent_max, 3),
                fluent_max - fluent_min < 0.15 && fluent_min > 0.4);
  bench::report("PMLS-Caffe collapse at large N", "12.7-19%", bench::fmt(pmls_large, 3),
                pmls_large < fluent_min - 0.15);
  bench::report("PMLS-Caffe fine at small N", "close to FluentPS", bench::fmt(pmls_small, 3),
                pmls_small > fluent_min - 0.15);
  return 0;
}
