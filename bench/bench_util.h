// Shared helpers for the paper-reproduction bench binaries.
//
// Every bench prints (a) the figure/table id and the paper's claim, (b) a
// table of measured rows, and (c) PAPER-VS-MEASURED lines that EXPERIMENTS.md
// collects. CSVs land in ./bench_out/ for plotting.
//
// Workload calibration (see DESIGN.md §1): the *virtual* compute time models
// the paper's large-batch GPU/CPU step and shrinks as 1/N (fixed global batch
// split across N workers); the *real* gradient math runs on a small per-worker
// batch so a bench finishes in seconds. Virtual network parameters model a
// contended 1 GbE-class fabric.
#pragma once

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "common/config.h"
#include "common/table.h"
#include "core/fluentps.h"

namespace fluentps::bench {

/// "AlexNet on CIFAR-10" stand-in: shallow non-convex MLP on the synthetic
/// 10-class task with momentum SGD (the regime of Figs 1, 7, 9, 10, 11).
inline core::ExperimentConfig alexnet_like(std::uint32_t workers, std::uint32_t servers,
                                           std::int64_t iters) {
  core::ExperimentConfig cfg;
  cfg.backend = core::Backend::kSim;
  cfg.num_workers = workers;
  cfg.num_servers = servers;
  cfg.max_iters = iters;
  // hidden = 256 puts the model at ~44 KB so the single server's link is the
  // bottleneck at N = 64 — the regime of the paper's 1 GbE CPU cluster, where
  // synchronization structure (bursts, DPR storms) shows up as time.
  cfg.model.kind = "mlp";
  cfg.model.hidden = 256;
  cfg.data.dim = 32;
  cfg.data.num_classes = 10;
  cfg.data.num_train = 4096;
  cfg.data.num_test = 1024;
  cfg.opt.kind = "momentum";
  cfg.opt.momentum = 0.9;
  // Large-batch regime: scaled-up lr, where stale reads measurably hurt
  // (ASP's accuracy deficit in Figs 10/11 only exists at this scale).
  cfg.opt.lr.base = 0.4;
  cfg.batch_size = 16;
  cfg.slicer = "eps";
  // Heterogeneous cluster: persistent per-worker pace factors (saturating the
  // staleness window, as in the paper's clusters) + per-iteration jitter +
  // transient spikes.
  cfg.compute.kind = "heterogeneous";
  cfg.compute.base_seconds = 3.2 / static_cast<double>(workers);
  cfg.compute.sigma = 0.25;
  cfg.compute.worker_sigma = 0.25;
  cfg.compute.straggler_prob = 0.02;
  cfg.compute.slowdown = 4.0;
  cfg.net.latency_seconds = 200e-6;
  cfg.net.bandwidth_bytes_per_sec = 3e7;
  cfg.seed = 2019;
  return cfg;
}

/// Same task with CIFAR-100-like labels.
inline core::ExperimentConfig alexnet100_like(std::uint32_t workers, std::uint32_t servers,
                                              std::int64_t iters) {
  auto cfg = alexnet_like(workers, servers, iters);
  cfg.data.num_classes = 100;
  cfg.data.teacher_hidden = 64;
  cfg.data.num_train = 8192;
  cfg.data.num_test = 2048;
  return cfg;
}

/// "ResNet-56 on CIFAR-10" stand-in: the 56-weight-layer residual MLP with
/// LARS for large-batch training (the regime of Figs 6, 8 and the ResNet rows
/// of Table IV). Model bytes are large enough that communication matters.
inline core::ExperimentConfig resnet56_like(std::uint32_t workers, std::uint32_t servers,
                                            std::int64_t iters) {
  core::ExperimentConfig cfg;
  cfg.backend = core::Backend::kSim;
  cfg.num_workers = workers;
  cfg.num_servers = servers;
  cfg.max_iters = iters;
  cfg.model.kind = "resmlp";
  cfg.model.hidden = 16;
  cfg.model.blocks = 27;  // 56 weight layers
  cfg.data.dim = 64;
  cfg.data.num_classes = 10;
  cfg.data.num_train = 4096;
  cfg.data.num_test = 1024;
  cfg.opt.kind = "lars";
  cfg.opt.lars_eta = 0.1;
  cfg.opt.lr.base = 1.0;
  cfg.opt.lr.kind = "step";
  cfg.opt.lr.decay_every = iters > 3 ? iters / 3 : 1;
  cfg.opt.lr.decay_factor = 0.3;
  cfg.opt.lr.warmup_iters = iters / 20;
  cfg.batch_size = 8;
  cfg.slicer = "eps";
  // GPU-cluster-like step time (batch 4096 split over N K80s) with the same
  // persistent heterogeneity as the CPU cluster.
  cfg.compute.kind = "heterogeneous";
  cfg.compute.base_seconds = 1.6 / static_cast<double>(workers);
  cfg.compute.sigma = 0.25;
  cfg.compute.worker_sigma = 0.2;
  cfg.compute.straggler_prob = 0.02;
  cfg.compute.slowdown = 4.0;
  cfg.net.latency_seconds = 200e-6;
  cfg.net.bandwidth_bytes_per_sec = 3e7;
  cfg.seed = 2019;
  return cfg;
}

/// Widened ResMLP whose stem dominates the byte count — the Fig 6 workload
/// where PS-Lite's default slicing creates a hot-spot server.
inline core::ExperimentConfig resnet56_comm_heavy(std::uint32_t workers, std::uint32_t servers,
                                                  std::int64_t iters) {
  auto cfg = resnet56_like(workers, servers, iters);
  cfg.model.hidden = 32;
  cfg.data.dim = 512;  // stem = 16384 params: 22% of the model in one tensor
  return cfg;
}

/// First curve time at which accuracy >= target; +inf if never reached.
inline double time_to_accuracy(const core::ExperimentResult& r, double target) {
  for (const auto& pt : r.curve) {
    if (pt.accuracy >= target) return pt.time;
  }
  return std::numeric_limits<double>::infinity();
}

/// Ensure ./bench_out exists and return the CSV path for `name`.
inline std::string csv_path(const std::string& name) {
  std::filesystem::create_directories("bench_out");
  return "bench_out/" + name + ".csv";
}

/// Shared telemetry flags for bench binaries (DESIGN.md §12): telemetry=on
/// enables the wait-free registry for the run; on the sim backend that means
/// the cumulative Prometheus dump (spans and the interval snapshotter need
/// real wall-clock time, so they stay off under virtual time).
inline void apply_telemetry_args(const Config& args, core::ExperimentConfig& cfg) {
  cfg.telemetry.enabled = args.get_bool("telemetry", false);
  cfg.telemetry.interval_ms =
      static_cast<std::uint32_t>(args.get_int("telemetry_interval_ms",
                                              cfg.telemetry.interval_ms));
}

/// Write a run's Prometheus dump to bench_out/<name>.prom (no-op when the
/// run had telemetry off).
inline void write_prometheus(const core::ExperimentResult& r, const std::string& name) {
  if (r.prometheus.empty()) return;
  std::filesystem::create_directories("bench_out");
  const std::string path = "bench_out/" + name + ".prom";
  std::ofstream f(path);
  f << r.prometheus;
  std::printf("telemetry: wrote %s\n", path.c_str());
}

inline void print_banner(const char* id, const char* claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", id);
  std::printf("Paper claim: %s\n", claim);
  std::printf("================================================================\n");
}

/// One PAPER-VS-MEASURED line (collected into EXPERIMENTS.md).
inline void report(const std::string& metric, const std::string& paper,
                   const std::string& measured, bool shape_holds) {
  std::printf("PAPER-VS-MEASURED | %-38s | paper: %-22s | measured: %-22s | shape %s\n",
              metric.c_str(), paper.c_str(), measured.c_str(), shape_holds ? "HOLDS" : "DIFFERS");
}

inline std::string fmt(double v, int prec = 2) { return Table::num(v, prec); }

/// "A.BCx" speedup string.
inline std::string speedup(double slow, double fast) {
  return fast > 0.0 ? Table::num(slow / fast, 2) + "x" : "inf";
}

/// Percentage-reduction string from `base` down to `value`.
inline std::string reduction(double base, double value) {
  if (base <= 0.0) return "n/a";
  return Table::num(100.0 * (1.0 - value / base), 1) + "%";
}

}  // namespace fluentps::bench
