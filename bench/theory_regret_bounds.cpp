// Section III-E theory reproduction:
//  (1) Eq 1 vs Eq 3: the regret bound of constant PSSP(s, c) equals the SSP
//      bound at effective staleness s' = s + 1/c - 1 (the paper's pairing
//      rule behind Fig 9's groups A..H).
//  (2) Theorem 1's distributional claim: constant PSSP behaves like SSP with
//      staleness s_i >= s with probability c * (1-c)^(s_i - s). We Monte-Carlo
//      the engine's coin and compare the empirical effective-staleness pmf to
//      the geometric law.
//  (3) Theorem 2: dynamic PSSP's minimum pause probability is alpha/2, so its
//      regret is bounded by constant PSSP with c = alpha/2.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "ps/conditions.h"

int main() {
  using namespace fluentps;
  using namespace fluentps::ps;

  bench::print_banner("Theory | Regret bounds and the PSSP effective-staleness law",
                      "PSSP(s,c) and SSP(s+1/c-1) share the bound 4FL*sqrt(2(s+1/c)N/T); "
                      "effective staleness is geometric: P(s_i) = c(1-c)^(s_i-s)");

  const double F = 1.0, L = 1.0;
  const std::uint32_t N = 64;
  const std::int64_t T = 4000 * 64;

  Table bounds("Eq 1 vs Eq 3: paired bounds (Fig 9 groups)");
  bounds.add_row({"group", "pssp(s,c)", "ssp(s')", "pssp_bound", "ssp_bound", "relative_diff"});
  struct Group {
    const char* name;
    std::int64_t s;
    double c;
    std::int64_t s_prime;
  };
  bool bounds_match = true;
  for (const auto& g : {Group{"A/B", 3, 0.5, 4}, Group{"C/D", 3, 1.0 / 3, 5},
                        Group{"E/F", 3, 0.2, 7}, Group{"G/H", 3, 0.1, 12}}) {
    const double bp = pssp_regret_bound(F, L, g.s, g.c, N, T);
    const double bs = ssp_regret_bound(F, L, g.s_prime, N, T);
    const double rel = std::abs(bp - bs) / bs;
    bounds_match = bounds_match && rel < 1e-9;
    bounds.add(std::string(g.name),
               "s=" + std::to_string(g.s) + ",c=" + Table::num(g.c, 3),
               "s'=" + std::to_string(g.s_prime), Table::num(bp, 5), Table::num(bs, 5),
               Table::num(rel, 9));
  }
  std::printf("%s\n", bounds.to_ascii().c_str());

  // (2) Monte-Carlo the coin: a worker at gap k >= s is paused w.p. c each
  // "iteration it tries to run ahead"; the staleness it effectively trains at
  // is s + G where G ~ Geometric(c) counts the passes before the first block.
  const std::int64_t s = 3;
  const double c = 0.3;
  Rng rng(7);
  const int trials = 200000;
  std::vector<int> counts(20, 0);
  for (int t = 0; t < trials; ++t) {
    std::int64_t k = s;
    // Pass the coin (prob 1-c) -> staleness grows; block (prob c) -> stop.
    while (rng.uniform() >= c && k < s + 15) ++k;
    const auto idx = static_cast<std::size_t>(k - s);
    if (idx < counts.size()) ++counts[idx];
  }
  Table pmf("Effective-staleness distribution: empirical vs c(1-c)^(k-s), s=3, c=0.3");
  pmf.add_row({"s_i", "empirical", "theory", "abs_err"});
  bool law_holds = true;
  for (std::size_t d = 0; d < 8; ++d) {
    const double emp = static_cast<double>(counts[d]) / trials;
    const double theory = c * std::pow(1.0 - c, static_cast<double>(d));
    const double err = std::abs(emp - theory);
    law_holds = law_holds && err < 0.01;
    pmf.add(std::to_string(s + static_cast<std::int64_t>(d)), Table::num(emp, 4),
            Table::num(theory, 4), Table::num(err, 4));
  }
  std::printf("%s\n", pmf.to_ascii().c_str());

  // Expected effective staleness: s - 1 + 1/c (mean of the law above).
  double mean_staleness = 0.0;
  for (std::size_t d = 0; d < counts.size(); ++d) {
    mean_staleness += static_cast<double>(s + static_cast<std::int64_t>(d)) *
                      static_cast<double>(counts[d]) / trials;
  }
  const double expected = static_cast<double>(s) - 1.0 + 1.0 / c;

  // (3) Dynamic PSSP dominance: its pause probability is >= alpha/2
  // everywhere on [s, inf), so its bound is tighter than constant c=alpha/2.
  const double alpha = 0.8;
  bool dyn_dominates = true;
  for (std::int64_t k = s; k < s + 30; ++k) {
    if (pssp_dynamic_probability(s, k, alpha) + 1e-12 < alpha / 2.0) dyn_dominates = false;
  }

  bench::report("Eq1/Eq3 paired bounds equal", "equal by Theorem 1", bounds_match ? "equal" : "differ",
                bounds_match);
  bench::report("effective staleness ~ geometric law", "c(1-c)^(k-s)",
                law_holds ? "matches (err<0.01)" : "mismatch", law_holds);
  bench::report("mean effective staleness", "s + 1/c - 1 = " + std::to_string(expected),
                bench::fmt(mean_staleness, 2), std::abs(mean_staleness - expected) < 0.2);
  bench::report("dynamic PSSP P(k) >= alpha/2 on [s,inf)", "Theorem 2 premise",
                dyn_dominates ? "holds" : "violated", dyn_dominates);
  return 0;
}
